// Command sweepd is the sweep service daemon: the long-lived face of the
// sharded, cached Coordinator. It accepts declarative simulation Specs —
// one JSON document per request — runs each through the Coordinator, and
// streams the Result back as JSONL, the same byte stream `sweep -json`
// emits. With -cache-dir, completed points persist across requests and
// daemon restarts, so repeated or overlapping Specs only ever simulate
// their missing cells.
//
// Usage:
//
//	sweep -emit-spec -figure 8 | sweepd [-cache-dir DIR] [-shards N] [-workers N]
//	sweepd -http :8080 [-cache-dir DIR] ...
//
// Without -http, sweepd reads a stream of Spec JSON documents from stdin
// (a Spec array is accepted as one document and run in order) and writes
// each Result's JSONL to stdout; a failed Spec produces a single
// {"type":"error",...} line instead, and the stream continues. With
// -http, POST /run takes one Spec document and streams the Result JSONL
// response; POST /shard is the fleet worker surface — it runs one
// shard-Spec serially (bounded by -max-shards, 503 when saturated) and
// streams its Result JSONL, writing whatever completed plus an in-band
// error line on failure so a fleet dispatcher can salvage the prefix;
// GET /healthz reports liveness as a JSON document (status, version,
// uptime, in-flight shards) with a bare 200 while healthy and 503 while
// draining; GET /metrics exposes process-lifetime counters (requests,
// points, cache hit ratio, run/shard latency histograms, fleet shard
// counters, and per-arbiter router telemetry aggregated from
// metrics-enabled specs) in the Prometheus text format; /debug/pprof/
// serves the standard profiling endpoints. SIGINT/SIGTERM drain the
// daemon: in-flight requests finish (up to -drain-timeout), new work is
// refused with 503. Diagnostics, including the per-run cache statistics,
// go to stderr.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"

	"alpha21364/internal/cache"
	"alpha21364/internal/experiment"
)

// daemonVersion identifies this build on /healthz; bump alongside the
// release notes in CHANGES.md.
const daemonVersion = "0.8.0"

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintf(os.Stderr, "sweepd: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	logger := log.New(stderr, "sweepd: ", 0)
	fs := flag.NewFlagSet("sweepd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	httpAddr := fs.String("http", "", "listen address for the HTTP API (empty = read Spec JSON from stdin)")
	cacheDir := fs.String("cache-dir", "", "content-addressed result cache directory shared by every request")
	shards := fs.Int("shards", 0, "decompose each sweep into about this many shard specs (0 = one shard per point)")
	workers := fs.Int("workers", 0, "concurrent shard executions per request (0 = one per CPU)")
	maxShards := fs.Int("max-shards", 0, "concurrent POST /shard executions accepted before answering 503 (0 = one per CPU)")
	drainTimeout := fs.Duration("drain-timeout", time.Minute, "how long SIGTERM waits for in-flight requests before forcing exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	var store *cache.Store
	if *cacheDir != "" {
		var err error
		store, err = cache.Open(*cacheDir)
		if err != nil {
			return err
		}
	}
	svc := newService(store, *shards, *workers, *maxShards, logger)
	if *httpAddr != "" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		logger.Printf("listening on %s", *httpAddr)
		return serveHTTP(ctx, *httpAddr, svc, *drainTimeout, logger)
	}
	return svc.serveStdin(stdin, stdout)
}

// serveHTTP runs the API server until the listener fails or ctx is
// cancelled by a shutdown signal, then drains: the service flips to
// draining (new requests 503), and in-flight requests get up to drain to
// finish streaming before the server is torn down.
func serveHTTP(ctx context.Context, addr string, svc *service, drain time.Duration, logger *log.Logger) error {
	srv := &http.Server{
		Addr:    addr,
		Handler: svc.handler(),
		// Slowloris guard: a connection that never finishes its headers
		// cannot pin a goroutine forever.
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	svc.draining.Store(true)
	logger.Printf("shutdown signal; draining in-flight requests (timeout %s)", drain)
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	logger.Printf("drained cleanly")
	return nil
}

// service holds the daemon's shared execution settings. Each request
// gets its own Coordinator (they are cheap); the cache store is the
// shared state that makes the daemon more than a loop over `sweep`.
type service struct {
	store   *cache.Store
	shards  int
	workers int
	log     *log.Logger
	metrics *daemonMetrics

	start    time.Time
	shardSem chan struct{} // bounds concurrent POST /shard executions
	draining atomic.Bool   // set once by shutdown; new requests answer 503
	inflight atomic.Int64  // POST /shard executions currently running
}

// newService wires a service; maxShards <= 0 defaults to one concurrent
// /shard execution per CPU.
func newService(store *cache.Store, shards, workers, maxShards int, logger *log.Logger) *service {
	if maxShards <= 0 {
		maxShards = runtime.NumCPU()
	}
	return &service{
		store:    store,
		shards:   shards,
		workers:  workers,
		log:      logger,
		metrics:  newDaemonMetrics(),
		start:    time.Now(),
		shardSem: make(chan struct{}, maxShards),
	}
}

func (s *service) coordinator() *experiment.Coordinator {
	opts := []experiment.CoordinatorOption{
		experiment.WithCoordinatorWorkers(s.workers),
		experiment.WithShards(s.shards),
	}
	if s.store != nil {
		opts = append(opts, experiment.WithCache(s.store))
	}
	return experiment.NewCoordinator(opts...)
}

// runSpec executes one parsed Spec and streams its Result JSONL to w.
func (s *service) runSpec(ctx context.Context, sp experiment.Spec, w io.Writer) error {
	s.metrics.recordRequest()
	co := s.coordinator()
	res, err := co.Run(ctx, sp)
	if err != nil {
		s.metrics.recordError()
		return err
	}
	st := co.Stats()
	s.metrics.recordRun(st, res)
	s.log.Printf("ran spec: %d/%d points cached, %d simulated, %d shard(s)",
		st.CachedPoints, st.TotalPoints, st.SimulatedPoints, st.Shards)
	return res.EncodeJSONL(w)
}

// runShard executes one shard-Spec for a fleet dispatcher and streams
// its Result JSONL. Shards bypass the Coordinator deliberately: the
// dispatching coordinator owns the cache and the merge, so the worker's
// job is only to simulate the sub-grid serially and faithfully. On
// failure the partial Result — a contiguous prefix of whole points — is
// streamed anyway, followed by an in-band error line, so the dispatcher
// salvages the finished points and retries only the tail.
func (s *service) runShard(ctx context.Context, sp experiment.Spec, w io.Writer) error {
	res, err := experiment.NewRunner(experiment.WithWorkers(1)).Run(ctx, sp)
	if res != nil {
		if encErr := res.EncodeJSONL(w); encErr != nil {
			// The stream to the dispatcher broke; nothing more to say on it.
			if err == nil {
				err = encErr
			}
			return err
		}
	}
	if err != nil {
		writeErrLine(w, err)
	}
	return err
}

// errLine is the inline failure record of the stdin stream: consumers of
// the multiplexed output distinguish it from Result records by its type.
type errLine struct {
	Type  string `json:"type"`
	Error string `json:"error"`
}

func writeErrLine(w io.Writer, err error) {
	data, merr := json.Marshal(errLine{Type: "error", Error: err.Error()})
	if merr != nil {
		return
	}
	fmt.Fprintf(w, "%s\n", data)
}

// serveStdin runs Specs from a JSON document stream until EOF. Spec
// failures are reported in-band and do not stop the stream; only an
// unreadable stream itself is fatal.
func (s *service) serveStdin(stdin io.Reader, stdout io.Writer) error {
	dec := json.NewDecoder(stdin)
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err == io.EOF {
			return nil
		} else if err != nil {
			return fmt.Errorf("read spec stream: %w", err)
		}
		specs, err := experiment.ParseSpecs(raw)
		if err != nil {
			s.metrics.recordBadRequest()
			writeErrLine(stdout, err)
			continue
		}
		for _, sp := range specs {
			if err := s.runSpec(context.Background(), sp, stdout); err != nil {
				writeErrLine(stdout, err)
			}
		}
	}
}

// flushWriter flushes the HTTP response after every write, so the JSONL
// stream reaches the client as it is produced.
type flushWriter struct{ w http.ResponseWriter }

func (f flushWriter) Write(p []byte) (int, error) {
	n, err := f.w.Write(p)
	if fl, ok := f.w.(http.Flusher); ok {
		fl.Flush()
	}
	return n, err
}

// maxSpecBytes bounds a /run or /shard request body; Specs are small
// documents.
const maxSpecBytes = 1 << 20

// readSpecBody reads a bounded request body and parses its Spec,
// answering the request itself on failure (413 for an oversized body,
// 400 for an undecodable one).
func (s *service) readSpecBody(w http.ResponseWriter, r *http.Request) (experiment.Spec, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		s.metrics.recordBadRequest()
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			http.Error(w, "spec document too large", http.StatusRequestEntityTooLarge)
		} else {
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
		return experiment.Spec{}, false
	}
	sp, err := experiment.ParseSpec(body)
	if err != nil {
		s.metrics.recordBadRequest()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return experiment.Spec{}, false
	}
	return sp, true
}

// healthStatus is the GET /healthz readiness document.
type healthStatus struct {
	Status         string  `json:"status"` // "ok" or "draining"
	Version        string  `json:"version"`
	UptimeSeconds  float64 `json:"uptime_seconds"`
	InflightShards int64   `json:"inflight_shards"`
}

func (s *service) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// The contract fleet heartbeats rely on: bare 200 while healthy,
		// 503 while draining. The JSON body is detail, not contract.
		st := healthStatus{
			Status:         "ok",
			Version:        daemonVersion,
			UptimeSeconds:  time.Since(s.start).Seconds(),
			InflightShards: s.inflight.Load(),
		}
		code := http.StatusOK
		if s.draining.Load() {
			st.Status = "draining"
			code = http.StatusServiceUnavailable
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(st)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.metrics.writeProm(w, s.inflight.Load()); err != nil {
			s.log.Printf("metrics write: %v", err)
		}
	})
	// The standard profiling endpoints, on the daemon's own mux (the
	// pprof package only self-registers on http.DefaultServeMux).
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("POST /run", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		sp, ok := s.readSpecBody(w, r)
		if !ok {
			return
		}
		w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
		if err := s.runSpec(r.Context(), sp, flushWriter{w}); err != nil {
			// Headers may already be out; report in-band like stdin mode.
			writeErrLine(flushWriter{w}, err)
		}
	})
	mux.HandleFunc("POST /shard", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			s.metrics.recordShardBusy()
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		select {
		case s.shardSem <- struct{}{}:
			defer func() { <-s.shardSem }()
		default:
			// Refusing beats queueing: the dispatcher's per-attempt timeout
			// is budget for simulating, not for waiting in line, and a 503
			// sends the shard to a worker with capacity right now.
			s.metrics.recordShardBusy()
			http.Error(w, "worker saturated", http.StatusServiceUnavailable)
			return
		}
		sp, ok := s.readSpecBody(w, r)
		if !ok {
			return
		}
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		s.metrics.recordShard()
		w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
		if err := s.runShard(r.Context(), sp, flushWriter{w}); err != nil {
			s.metrics.recordShardError()
			s.log.Printf("shard failed: %v", err)
		}
	})
	return mux
}

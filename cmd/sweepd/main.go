// Command sweepd is the sweep service daemon: the long-lived face of the
// sharded, cached Coordinator. It accepts declarative simulation Specs —
// one JSON document per request — runs each through the Coordinator, and
// streams the Result back as JSONL, the same byte stream `sweep -json`
// emits. With -cache-dir, completed points persist across requests and
// daemon restarts, so repeated or overlapping Specs only ever simulate
// their missing cells.
//
// Usage:
//
//	sweep -emit-spec -figure 8 | sweepd [-cache-dir DIR] [-shards N] [-workers N]
//	sweepd -http :8080 [-cache-dir DIR] ...
//
// Without -http, sweepd reads a stream of Spec JSON documents from stdin
// (a Spec array is accepted as one document and run in order) and writes
// each Result's JSONL to stdout; a failed Spec produces a single
// {"type":"error",...} line instead, and the stream continues. With
// -http, POST /run takes one Spec document and streams the Result JSONL
// response; GET /healthz reports liveness; GET /metrics exposes
// process-lifetime counters (requests, points, cache hit ratio,
// run/shard latency histograms, and per-arbiter router telemetry
// aggregated from metrics-enabled specs) in the Prometheus text format;
// /debug/pprof/ serves the standard profiling endpoints. Diagnostics,
// including the per-run cache statistics, go to stderr.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"os"

	"alpha21364/internal/cache"
	"alpha21364/internal/experiment"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintf(os.Stderr, "sweepd: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	logger := log.New(stderr, "sweepd: ", 0)
	fs := flag.NewFlagSet("sweepd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	httpAddr := fs.String("http", "", "listen address for the HTTP API (empty = read Spec JSON from stdin)")
	cacheDir := fs.String("cache-dir", "", "content-addressed result cache directory shared by every request")
	shards := fs.Int("shards", 0, "decompose each sweep into about this many shard specs (0 = one shard per point)")
	workers := fs.Int("workers", 0, "concurrent shard executions per request (0 = one per CPU)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	svc := &service{shards: *shards, workers: *workers, log: logger, metrics: newDaemonMetrics()}
	if *cacheDir != "" {
		store, err := cache.Open(*cacheDir)
		if err != nil {
			return err
		}
		svc.store = store
	}
	if *httpAddr != "" {
		logger.Printf("listening on %s", *httpAddr)
		return http.ListenAndServe(*httpAddr, svc.handler())
	}
	return svc.serveStdin(stdin, stdout)
}

// service holds the daemon's shared execution settings. Each request
// gets its own Coordinator (they are cheap); the cache store is the
// shared state that makes the daemon more than a loop over `sweep`.
type service struct {
	store   *cache.Store
	shards  int
	workers int
	log     *log.Logger
	metrics *daemonMetrics
}

func (s *service) coordinator() *experiment.Coordinator {
	opts := []experiment.CoordinatorOption{
		experiment.WithCoordinatorWorkers(s.workers),
		experiment.WithShards(s.shards),
	}
	if s.store != nil {
		opts = append(opts, experiment.WithCache(s.store))
	}
	return experiment.NewCoordinator(opts...)
}

// runSpec executes one parsed Spec and streams its Result JSONL to w.
func (s *service) runSpec(ctx context.Context, sp experiment.Spec, w io.Writer) error {
	s.metrics.recordRequest()
	co := s.coordinator()
	res, err := co.Run(ctx, sp)
	if err != nil {
		s.metrics.recordError()
		return err
	}
	st := co.Stats()
	s.metrics.recordRun(st, res)
	s.log.Printf("ran spec: %d/%d points cached, %d simulated, %d shard(s)",
		st.CachedPoints, st.TotalPoints, st.SimulatedPoints, st.Shards)
	return res.EncodeJSONL(w)
}

// errLine is the inline failure record of the stdin stream: consumers of
// the multiplexed output distinguish it from Result records by its type.
type errLine struct {
	Type  string `json:"type"`
	Error string `json:"error"`
}

func writeErrLine(w io.Writer, err error) {
	data, merr := json.Marshal(errLine{Type: "error", Error: err.Error()})
	if merr != nil {
		return
	}
	fmt.Fprintf(w, "%s\n", data)
}

// serveStdin runs Specs from a JSON document stream until EOF. Spec
// failures are reported in-band and do not stop the stream; only an
// unreadable stream itself is fatal.
func (s *service) serveStdin(stdin io.Reader, stdout io.Writer) error {
	dec := json.NewDecoder(stdin)
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err == io.EOF {
			return nil
		} else if err != nil {
			return fmt.Errorf("read spec stream: %w", err)
		}
		specs, err := experiment.ParseSpecs(raw)
		if err != nil {
			s.metrics.recordBadRequest()
			writeErrLine(stdout, err)
			continue
		}
		for _, sp := range specs {
			if err := s.runSpec(context.Background(), sp, stdout); err != nil {
				writeErrLine(stdout, err)
			}
		}
	}
}

// flushWriter flushes the HTTP response after every write, so the JSONL
// stream reaches the client as it is produced.
type flushWriter struct{ w http.ResponseWriter }

func (f flushWriter) Write(p []byte) (int, error) {
	n, err := f.w.Write(p)
	if fl, ok := f.w.(http.Flusher); ok {
		fl.Flush()
	}
	return n, err
}

// maxSpecBytes bounds a /run request body; Specs are small documents.
const maxSpecBytes = 1 << 20

func (s *service) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.metrics.writeProm(w); err != nil {
			s.log.Printf("metrics write: %v", err)
		}
	})
	// The standard profiling endpoints, on the daemon's own mux (the
	// pprof package only self-registers on http.DefaultServeMux).
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("POST /run", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
		if err != nil {
			s.metrics.recordBadRequest()
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if len(body) > maxSpecBytes {
			s.metrics.recordBadRequest()
			http.Error(w, "spec document too large", http.StatusRequestEntityTooLarge)
			return
		}
		sp, err := experiment.ParseSpec(body)
		if err != nil {
			s.metrics.recordBadRequest()
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
		if err := s.runSpec(r.Context(), sp, flushWriter{w}); err != nil {
			// Headers may already be out; report in-band like stdin mode.
			writeErrLine(flushWriter{w}, err)
		}
	})
	return mux
}

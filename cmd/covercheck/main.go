// Command covercheck enforces the repository's per-package coverage
// floors: it aggregates a Go cover profile (go test -covermode=atomic
// -coverprofile) into per-package statement coverage and compares each
// package against the floors checked in as COVERAGE.json. A package
// falling below its floor fails the run — the CI coverage gate — and a
// tested package with no recorded floor fails too, so new packages
// cannot silently dodge the gate.
//
// Usage:
//
//	go test -covermode=atomic -coverprofile=cover.out ./...
//	go run ./cmd/covercheck -profile cover.out -floors COVERAGE.json
//
// Regenerate the floors (current coverage minus the margin, floored):
//
//	go run ./cmd/covercheck -profile cover.out -floors COVERAGE.json -write
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

func main() {
	profile := flag.String("profile", "cover.out", "cover profile written by go test -coverprofile")
	floors := flag.String("floors", "COVERAGE.json", "per-package floor file (JSON: import path -> percent)")
	write := flag.Bool("write", false, "regenerate the floor file from the profile instead of checking")
	margin := flag.Float64("margin", 5, "with -write, points of slack below current coverage")
	flag.Parse()

	cov, err := packageCoverage(*profile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "covercheck: %v\n", err)
		os.Exit(1)
	}
	if *write {
		if err := writeFloors(*floors, cov, *margin); err != nil {
			fmt.Fprintf(os.Stderr, "covercheck: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := checkFloors(*floors, cov); err != nil {
		fmt.Fprintf(os.Stderr, "covercheck: %v\n", err)
		os.Exit(1)
	}
}

// pkgCov accumulates one package's statement counts.
type pkgCov struct {
	total, covered int
}

func (p pkgCov) percent() float64 {
	if p.total == 0 {
		return 0
	}
	return 100 * float64(p.covered) / float64(p.total)
}

// packageCoverage aggregates a cover profile into per-package statement
// coverage. Profile lines look like:
//
//	alpha21364/internal/sim/engine.go:93.42,99.2 4 12
//
// (file:startLine.col,endLine.col numStatements hitCount).
func packageCoverage(profilePath string) (map[string]pkgCov, error) {
	f, err := os.Open(profilePath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cov := make(map[string]pkgCov)
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "mode:") {
			continue
		}
		colon := strings.LastIndex(text, ":")
		if colon < 0 {
			return nil, fmt.Errorf("%s:%d: malformed profile line %q", profilePath, line, text)
		}
		pkg := path.Dir(text[:colon])
		fields := strings.Fields(text[colon+1:])
		if len(fields) != 3 {
			return nil, fmt.Errorf("%s:%d: malformed profile line %q", profilePath, line, text)
		}
		stmts, err1 := strconv.Atoi(fields[1])
		count, err2 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("%s:%d: malformed counts in %q", profilePath, line, text)
		}
		c := cov[pkg]
		c.total += stmts
		if count > 0 {
			c.covered += stmts
		}
		cov[pkg] = c
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(cov) == 0 {
		return nil, fmt.Errorf("%s: empty profile (did the test run produce coverage?)", profilePath)
	}
	return cov, nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func writeFloors(floorsPath string, cov map[string]pkgCov, margin float64) error {
	floors := make(map[string]float64, len(cov))
	for pkg, c := range cov {
		floor := math.Floor(c.percent() - margin)
		if floor < 0 {
			floor = 0
		}
		floors[pkg] = floor
	}
	data, err := json.MarshalIndent(floors, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(floorsPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	for _, pkg := range sortedKeys(floors) {
		fmt.Printf("%-40s %6.1f%% (floor %4.0f%%)\n", pkg, cov[pkg].percent(), floors[pkg])
	}
	fmt.Printf("wrote %s (%d packages, margin %.0f points)\n", floorsPath, len(floors), margin)
	return nil
}

func checkFloors(floorsPath string, cov map[string]pkgCov) error {
	data, err := os.ReadFile(floorsPath)
	if err != nil {
		return err
	}
	var floors map[string]float64
	if err := json.Unmarshal(data, &floors); err != nil {
		return fmt.Errorf("%s: %w", floorsPath, err)
	}
	var failures []string
	for _, pkg := range sortedKeys(cov) {
		pct := cov[pkg].percent()
		floor, ok := floors[pkg]
		if !ok {
			failures = append(failures, fmt.Sprintf(
				"%s: %.1f%% covered but no floor recorded; add one with covercheck -write", pkg, pct))
			continue
		}
		status := "ok"
		if pct < floor {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf(
				"%s: coverage %.1f%% fell below the %.0f%% floor", pkg, pct, floor))
		}
		fmt.Printf("%-40s %6.1f%% (floor %4.0f%%) %s\n", pkg, pct, floor, status)
	}
	for _, pkg := range sortedKeys(floors) {
		if _, ok := cov[pkg]; !ok {
			// A floor for a package the profile no longer sees: stale, but
			// not a coverage regression — surface it without failing.
			fmt.Printf("%-40s absent from profile (stale floor?)\n", pkg)
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d coverage failure(s):\n  %s", len(failures), strings.Join(failures, "\n  "))
	}
	fmt.Printf("all %d packages at or above their floors\n", len(cov))
	return nil
}

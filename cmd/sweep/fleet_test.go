package main

// fleet_test.go drives the -fleet flag end to end against an in-test
// worker speaking the sweepd /shard protocol: the fleet-dispatched
// stdout must be byte-identical to the in-process run, flaky worker
// included.

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"alpha21364/internal/experiment"
)

// fleetWorker serves /healthz and /shard the way sweepd does; failFirst
// makes the first shard request die after a flush-less 500, exercising
// the retry path.
func fleetWorker(t *testing.T, failFirst bool) *httptest.Server {
	t.Helper()
	var n atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("POST /shard", func(w http.ResponseWriter, r *http.Request) {
		if failFirst && n.Add(1) == 1 {
			http.Error(w, "injected failure", http.StatusInternalServerError)
			return
		}
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		sp, err := experiment.ParseSpec(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res, err := experiment.NewRunner(experiment.WithWorkers(1)).Run(r.Context(), sp)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if err := res.EncodeJSONL(w); err != nil {
			t.Logf("encode: %v", err)
		}
	})
	return httptest.NewServer(mux)
}

var fleetMatrixArgs = []string{
	"-matrix", "-algos", "PIM1", "-patterns", "random", "-processes", "bernoulli",
	"-rates", "0.02,0.04", "-size", "4x4", "-cycles", "300", "-json", "-stable",
}

// TestFleetFlagMatchesInProcess runs the same matrix with and without
// -fleet and requires byte-identical stdout.
func TestFleetFlagMatchesInProcess(t *testing.T) {
	var mono, fleeted, stderr bytes.Buffer
	if err := run(append([]string{}, fleetMatrixArgs...), &mono, &stderr); err != nil {
		t.Fatalf("in-process run: %v\n%s", err, stderr.String())
	}

	srv := fleetWorker(t, false)
	defer srv.Close()
	stderr.Reset()
	args := append([]string{"-fleet", strings.TrimPrefix(srv.URL, "http://")}, fleetMatrixArgs...)
	if err := run(args, &fleeted, &stderr); err != nil {
		t.Fatalf("fleet run: %v\n%s", err, stderr.String())
	}
	if mono.String() != fleeted.String() {
		t.Errorf("-fleet output diverges from in-process output:\nfleet:\n%s\nmono:\n%s",
			fleeted.String(), mono.String())
	}
	if !strings.Contains(stderr.String(), "fleet:") {
		t.Errorf("fleet run never logged its dispatch stats:\n%s", stderr.String())
	}
}

// TestFleetFlagRetriesFailedWorker injects a 500 on the first shard and
// still demands byte-identity — the retry must be invisible in the
// output.
func TestFleetFlagRetriesFailedWorker(t *testing.T) {
	var mono, fleeted, stderr bytes.Buffer
	if err := run(append([]string{}, fleetMatrixArgs...), &mono, &stderr); err != nil {
		t.Fatalf("in-process run: %v\n%s", err, stderr.String())
	}

	srv := fleetWorker(t, true)
	defer srv.Close()
	stderr.Reset()
	args := append([]string{"-fleet", srv.URL, "-fleet-retries", "3", "-fleet-timeout", "30s"}, fleetMatrixArgs...)
	if err := run(args, &fleeted, &stderr); err != nil {
		t.Fatalf("fleet run with flaky worker: %v\n%s", err, stderr.String())
	}
	if mono.String() != fleeted.String() {
		t.Error("-fleet output diverges from in-process output after a retried failure")
	}
	if !strings.Contains(stderr.String(), "1 retried") {
		t.Errorf("expected exactly one retried shard in the stats:\n%s", stderr.String())
	}
}

// TestFleetFlagRejectsBadAddress pins the fail-fast on an unparseable
// worker address.
func TestFleetFlagRejectsBadAddress(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := append([]string{"-fleet", "ftp://nope"}, fleetMatrixArgs...)
	if err := run(args, &stdout, &stderr); err == nil {
		t.Error("a bad -fleet address was accepted")
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"alpha21364/internal/experiment"
)

// TestProgressGoesToStderrNotStdout pipes a -json -progress run through
// captured buffers and checks the streams never interleave: stdout must
// be pure Result JSONL (every line parses as a typed record), and every
// progress line must be on stderr.
func TestProgressGoesToStderrNotStdout(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-run", "-algo", "SPAA-rotary", "-pattern", "random", "-process", "bernoulli",
		"-rate", "0.02", "-size", "4x4", "-cycles", "400",
		"-json", "-progress", "-workers", "1",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}

	// stdout: strictly machine-readable JSONL.
	lines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
	if len(lines) < 3 {
		t.Fatalf("stdout has %d lines, want at least header+series+point:\n%s", len(lines), stdout.String())
	}
	for i, line := range lines {
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal([]byte(line), &probe); err != nil {
			t.Fatalf("stdout line %d is not JSON (progress leaked into stdout?): %q: %v", i+1, line, err)
		}
		switch probe.Type {
		case "result", "series", "point":
		default:
			t.Fatalf("stdout line %d has unexpected record type %q", i+1, probe.Type)
		}
	}
	// The stream must round-trip through the Result decoder.
	res, err := experiment.DecodeResultJSONL(strings.NewReader(stdout.String()))
	if err != nil {
		t.Fatalf("stdout is not a decodable Result stream: %v", err)
	}
	if len(res.Series) != 1 || len(res.Series[0].Points) != 1 {
		t.Fatalf("decoded result has wrong shape: %d series", len(res.Series))
	}

	// stderr: the progress lines (and only diagnostics) live here.
	if !strings.Contains(stderr.String(), "start ") && !strings.Contains(stderr.String(), "[") {
		t.Fatalf("expected progress lines on stderr, got:\n%s", stderr.String())
	}
	for _, line := range strings.Split(stderr.String(), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "{") {
			t.Fatalf("JSONL leaked into stderr: %q", line)
		}
	}
}

// TestTableOutputStdoutSeparation covers the default (non-JSON) path:
// tables on stdout, progress on stderr.
func TestTableOutputStdoutSeparation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-run", "-algo", "PIM1", "-rate", "0.02", "-size", "4x4", "-cycles", "300",
		"-progress", "-workers", "1",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "flits/router/ns") {
		t.Fatalf("stdout missing the run summary:\n%s", stdout.String())
	}
	if strings.Contains(stdout.String(), "sweep:") {
		t.Fatalf("diagnostics leaked into stdout:\n%s", stdout.String())
	}
}

// TestContradictoryFlagsRejected spot-checks the flag contradiction
// rules surface as errors, not silent behavior.
func TestContradictoryFlagsRejected(t *testing.T) {
	cases := [][]string{
		{"-bench", "-figure", "8"},
		{"-bench-baseline", "x.json"},
		{"-emit-spec", "-json"},
		{"-record", "a", "-replay", "b"},
		{"-cache-dir", "d", "-bench"},
		{"-cache-dir", "d", "-record", "a", "-run"},
		{"-shards", "4", "-verify"},
		{"-resume"},
		{"-torus-shards", "2", "-figure", "8"},
		{"-torus-shards", "2", "-replay", "t.trace"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if err := run(args, &stdout, &stderr); err == nil {
			t.Errorf("args %v: expected an error", args)
		}
	}
}

// TestTorusShardsFlagMatchesSerial is the CLI face of the spatial-sharding
// byte-identity contract: the same -run with and without -torus-shards
// must decode to equal Results, down to every point, once the one
// intentional difference — the spec's own torus_shards provenance field —
// is normalized away.
func TestTorusShardsFlagMatchesSerial(t *testing.T) {
	decode := func(extra ...string) *experiment.Result {
		t.Helper()
		args := append([]string{
			"-run", "-algo", "SPAA-rotary", "-pattern", "bit-reversal", "-process", "bernoulli",
			"-rate", "0.04", "-size", "4x4", "-cycles", "400",
			"-json", "-stable", "-workers", "1",
		}, extra...)
		var stdout, stderr bytes.Buffer
		if err := run(args, &stdout, &stderr); err != nil {
			t.Fatalf("run %v: %v\nstderr:\n%s", args, err, stderr.String())
		}
		res, err := experiment.DecodeResultJSONL(strings.NewReader(stdout.String()))
		if err != nil {
			t.Fatalf("decode %v: %v", args, err)
		}
		return res
	}
	serial := decode()
	sharded := decode("-torus-shards", "2")
	if sharded.Spec.Timing == nil || sharded.Spec.Timing.TorusShards != 2 {
		t.Fatalf("-torus-shards 2 not stamped into the spec: %+v", sharded.Spec.Timing)
	}
	sharded.Spec.Timing.TorusShards = 0
	if !reflect.DeepEqual(serial, sharded) {
		t.Fatalf("sharded -run diverged from serial:\nserial  %+v\nsharded %+v", serial, sharded)
	}
}

// ruleSamples supplies a parseable value for every flag the rule tables
// mention, so the enumeration tests can set any flag by name.
var ruleSamples = map[string]string{
	"spec": "specs.json", "figure": "8", "matrix": "true", "run": "true",
	"verify": "true", "bench": "true", "quick": "true", "seed": "2",
	"cycles": "100", "size": "4x4", "algo": "PIM1", "algos": "PIM1",
	"pattern": "random", "patterns": "random", "process": "bernoulli",
	"processes": "bernoulli", "model": "coherence", "rate": "0.02",
	"rates": "0.02", "record": "t.trace", "replay": "t.trace",
	"check": "true", "reps": "2", "confidence": "0.9", "emit-spec": "true",
	"json": "true", "workers": "2", "progress": "true", "list": "true",
	"cache-dir": "cachedir", "shards": "4", "bench-baseline": "BENCH.json",
	"resume": "true", "metrics": "true", "stable": "true",
	"fleet": "127.0.0.1:9", "fleet-timeout": "2m", "fleet-retries": "2",
	"torus-shards": "2",
}

func sampleArg(t *testing.T, name string) string {
	t.Helper()
	v, ok := ruleSamples[name]
	if !ok {
		t.Fatalf("rule table mentions flag %q with no sample value; add it to ruleSamples", name)
	}
	return "-" + name + "=" + v
}

// TestEveryContradictionRuleRejects enumerates the whole contradiction
// table: each pair, set together (and nothing else), must be rejected
// with an error naming both flags — proving every rule is live, every
// flag it names exists, and no rule is shadowed by another.
func TestEveryContradictionRuleRejects(t *testing.T) {
	for _, c := range contradictions {
		args := []string{sampleArg(t, c.a), sampleArg(t, c.b)}
		var stdout, stderr bytes.Buffer
		err := run(args, &stdout, &stderr)
		if err == nil {
			t.Errorf("%v: contradiction (%s, %s) not enforced", args, c.a, c.b)
			continue
		}
		msg := err.Error()
		if !strings.Contains(msg, "contradictory") ||
			!strings.Contains(msg, "-"+c.a) || !strings.Contains(msg, "-"+c.b) {
			t.Errorf("%v: error %q does not name the (%s, %s) contradiction", args, msg, c.a, c.b)
		}
	}
}

// TestEveryRequirementRuleRejects enumerates the requirement table: each
// dependent flag, set alone, must be rejected naming its prerequisite.
func TestEveryRequirementRuleRejects(t *testing.T) {
	for _, r := range requirements {
		args := []string{sampleArg(t, r.flag)}
		var stdout, stderr bytes.Buffer
		err := run(args, &stdout, &stderr)
		if err == nil {
			t.Errorf("%v: requirement %s -> %s not enforced", args, r.flag, r.needs)
			continue
		}
		if !strings.Contains(err.Error(), "requires -"+r.needs) {
			t.Errorf("%v: error %q does not name the missing -%s", args, err.Error(), r.needs)
		}
	}
}

// TestRuleTablesWellFormed rejects degenerate rules: self-pairs,
// duplicate pairs, and empty rationales.
func TestRuleTablesWellFormed(t *testing.T) {
	seen := map[[2]string]bool{}
	for _, c := range contradictions {
		if c.a == c.b {
			t.Errorf("rule pairs %q with itself", c.a)
		}
		if c.why == "" {
			t.Errorf("rule (%s, %s) has no rationale", c.a, c.b)
		}
		k := [2]string{c.a, c.b}
		if c.a > c.b {
			k = [2]string{c.b, c.a}
		}
		if seen[k] {
			t.Errorf("rule (%s, %s) appears twice", c.a, c.b)
		}
		seen[k] = true
	}
	for _, r := range requirements {
		if r.flag == r.needs || r.why == "" {
			t.Errorf("malformed requirement %+v", r)
		}
	}
}

// TestCachedMatrixSecondRunSimulatesNothing is the CLI face of the cache
// contract: the same -matrix invocation twice against one -cache-dir
// must simulate zero points the second time and emit identical bytes.
// -stable is the supported normalization: it zeroes the wall-clock
// field at the source, so the streams compare with plain equality.
func TestCachedMatrixSecondRunSimulatesNothing(t *testing.T) {
	dir := t.TempDir()
	args := []string{
		"-matrix", "-algos", "PIM1", "-patterns", "random", "-processes", "bernoulli",
		"-rates", "0.02,0.04", "-size", "4x4", "-cycles", "300",
		"-json", "-stable", "-cache-dir", filepath.Join(dir, "cache"),
	}
	var out1, err1, out2, err2 bytes.Buffer
	if err := run(args, &out1, &err1); err != nil {
		t.Fatalf("cold run: %v\nstderr:\n%s", err, err1.String())
	}
	if !strings.Contains(err1.String(), "0/2 points cached, 2 simulated") {
		t.Fatalf("cold run stats missing or wrong:\n%s", err1.String())
	}
	if err := run(args, &out2, &err2); err != nil {
		t.Fatalf("warm run: %v\nstderr:\n%s", err, err2.String())
	}
	if !strings.Contains(err2.String(), "2/2 points cached, 0 simulated") {
		t.Fatalf("warm run still simulated:\n%s", err2.String())
	}
	if out1.String() != out2.String() {
		t.Fatalf("cached -stable run output diverged:\n--- cold ---\n%s\n--- warm ---\n%s", out1.String(), out2.String())
	}
	// ElapsedNS is omitempty: stripping it means the key disappears.
	if strings.Contains(out1.String(), `"elapsed_ns"`) {
		t.Fatalf("-stable did not strip elapsed_ns:\n%s", out1.String())
	}
}

// TestMetricsFlagEmitsSnapshotsAndSidecar is the CLI face of the
// telemetry layer: -metrics makes every emitted point carry a snapshot,
// and with -out a loadable <name>.metrics.json sidecar appears.
func TestMetricsFlagEmitsSnapshotsAndSidecar(t *testing.T) {
	outDir := t.TempDir()
	args := []string{
		"-matrix", "-algos", "PIM1", "-patterns", "random", "-processes", "bernoulli",
		"-rates", "0.02", "-size", "4x4", "-cycles", "300",
		"-json", "-stable", "-metrics", "-out", outDir,
	}
	var stdout, stderr bytes.Buffer
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), `"metrics":{"version":1`) {
		t.Fatalf("-metrics stream carries no snapshots:\n%s", stdout.String())
	}
	sidecar := filepath.Join(outDir, "scenario-matrix.metrics.json")
	sc, err := experiment.ReadMetricsSidecarFile(sidecar)
	if err != nil {
		t.Fatalf("sidecar: %v", err)
	}
	if len(sc.Points) != 1 || sc.Points[0].Metrics == nil {
		t.Fatalf("sidecar has %d point(s), want 1 with a snapshot", len(sc.Points))
	}
	if sc.Points[0].Metrics.Arbiter != "PIM1" {
		t.Errorf("sidecar snapshot arbiter = %q, want PIM1", sc.Points[0].Metrics.Arbiter)
	}

	// Without -metrics, no snapshot key and no sidecar.
	bareDir := t.TempDir()
	bareArgs := []string{
		"-matrix", "-algos", "PIM1", "-patterns", "random", "-processes", "bernoulli",
		"-rates", "0.02", "-size", "4x4", "-cycles", "300",
		"-json", "-out", bareDir,
	}
	stdout.Reset()
	stderr.Reset()
	if err := run(bareArgs, &stdout, &stderr); err != nil {
		t.Fatalf("bare run: %v\nstderr:\n%s", err, stderr.String())
	}
	if strings.Contains(stdout.String(), `"metrics"`) {
		t.Fatalf("bare run emitted a metrics key:\n%s", stdout.String())
	}
	if _, err := experiment.ReadMetricsSidecarFile(filepath.Join(bareDir, "scenario-matrix.metrics.json")); err == nil {
		t.Error("bare run wrote a metrics sidecar")
	}
}

// TestResumeFlagContract checks both sides of -resume: against an empty
// cache it refuses to start, and against a populated one it proceeds as
// a pure cache read.
func TestResumeFlagContract(t *testing.T) {
	cacheArg := filepath.Join(t.TempDir(), "cache")
	base := []string{
		"-matrix", "-algos", "PIM1", "-patterns", "random", "-processes", "bernoulli",
		"-rates", "0.02", "-size", "4x4", "-cycles", "300", "-json", "-cache-dir", cacheArg,
	}
	var stdout, stderr bytes.Buffer
	err := run(append([]string{"-resume"}, base...), &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "no completed points") {
		t.Fatalf("resume against an empty cache: err=%v, want a 'no completed points' refusal", err)
	}
	stdout.Reset()
	stderr.Reset()
	if err := run(base, &stdout, &stderr); err != nil {
		t.Fatalf("seed run: %v\nstderr:\n%s", err, stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	if err := run(append([]string{"-resume"}, base...), &stdout, &stderr); err != nil {
		t.Fatalf("resume after seed run: %v\nstderr:\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "resume: 1 completed point(s) already cached") {
		t.Fatalf("resume preamble missing:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "0 simulated") {
		t.Fatalf("resumed run re-simulated cached points:\n%s", stderr.String())
	}
}

// TestBenchWritesReport runs the bench suite into a temp dir and
// validates the BENCH_*.json schema, plus the baseline comparison paths.
func TestBenchWritesReport(t *testing.T) {
	if testing.Short() {
		t.Skip("bench suite is seconds-long; skipped in -short")
	}
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-bench", "-out", dir}, &stdout, &stderr); err != nil {
		t.Fatalf("bench: %v\nstderr:\n%s", err, stderr.String())
	}
	rep, err := experiment.ReadBenchFile(fmt.Sprintf("%s/BENCH_%d.json", dir, experiment.BenchVersion))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) == 0 || rep.CalibrationNS <= 0 {
		t.Fatalf("bench report malformed: %+v", rep)
	}
	for _, e := range rep.Entries {
		if e.NSPerSimCycle <= 0 || e.SimCycles <= 0 {
			t.Fatalf("bench entry %s has empty measurements: %+v", e.Name, e)
		}
	}
	// Comparing a report against itself must pass the gate...
	if regs := rep.Compare(rep, 0.15); len(regs) != 0 {
		t.Fatalf("self-comparison reported regressions: %v", regs)
	}
	// ...and a doctored 2x-faster baseline must fail it.
	faster := *rep
	faster.Entries = append([]experiment.BenchEntryResult(nil), rep.Entries...)
	for i := range faster.Entries {
		faster.Entries[i].NSPerSimCycle /= 2
	}
	if regs := rep.Compare(&faster, 0.15); len(regs) == 0 {
		t.Fatal("2x regression not detected against doctored baseline")
	}
}

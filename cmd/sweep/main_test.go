package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"alpha21364/internal/experiment"
)

// TestProgressGoesToStderrNotStdout pipes a -json -progress run through
// captured buffers and checks the streams never interleave: stdout must
// be pure Result JSONL (every line parses as a typed record), and every
// progress line must be on stderr.
func TestProgressGoesToStderrNotStdout(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-run", "-algo", "SPAA-rotary", "-pattern", "random", "-process", "bernoulli",
		"-rate", "0.02", "-size", "4x4", "-cycles", "400",
		"-json", "-progress", "-workers", "1",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}

	// stdout: strictly machine-readable JSONL.
	lines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
	if len(lines) < 3 {
		t.Fatalf("stdout has %d lines, want at least header+series+point:\n%s", len(lines), stdout.String())
	}
	for i, line := range lines {
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal([]byte(line), &probe); err != nil {
			t.Fatalf("stdout line %d is not JSON (progress leaked into stdout?): %q: %v", i+1, line, err)
		}
		switch probe.Type {
		case "result", "series", "point":
		default:
			t.Fatalf("stdout line %d has unexpected record type %q", i+1, probe.Type)
		}
	}
	// The stream must round-trip through the Result decoder.
	res, err := experiment.DecodeResultJSONL(strings.NewReader(stdout.String()))
	if err != nil {
		t.Fatalf("stdout is not a decodable Result stream: %v", err)
	}
	if len(res.Series) != 1 || len(res.Series[0].Points) != 1 {
		t.Fatalf("decoded result has wrong shape: %d series", len(res.Series))
	}

	// stderr: the progress lines (and only diagnostics) live here.
	if !strings.Contains(stderr.String(), "start ") && !strings.Contains(stderr.String(), "[") {
		t.Fatalf("expected progress lines on stderr, got:\n%s", stderr.String())
	}
	for _, line := range strings.Split(stderr.String(), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "{") {
			t.Fatalf("JSONL leaked into stderr: %q", line)
		}
	}
}

// TestTableOutputStdoutSeparation covers the default (non-JSON) path:
// tables on stdout, progress on stderr.
func TestTableOutputStdoutSeparation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-run", "-algo", "PIM1", "-rate", "0.02", "-size", "4x4", "-cycles", "300",
		"-progress", "-workers", "1",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "flits/router/ns") {
		t.Fatalf("stdout missing the run summary:\n%s", stdout.String())
	}
	if strings.Contains(stdout.String(), "sweep:") {
		t.Fatalf("diagnostics leaked into stdout:\n%s", stdout.String())
	}
}

// TestContradictoryFlagsRejected spot-checks the flag contradiction
// rules surface as errors, not silent behavior.
func TestContradictoryFlagsRejected(t *testing.T) {
	cases := [][]string{
		{"-bench", "-figure", "8"},
		{"-bench-baseline", "x.json"},
		{"-emit-spec", "-json"},
		{"-record", "a", "-replay", "b"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if err := run(args, &stdout, &stderr); err == nil {
			t.Errorf("args %v: expected an error", args)
		}
	}
}

// TestBenchWritesReport runs the bench suite into a temp dir and
// validates the BENCH_4.json schema, plus the baseline comparison paths.
func TestBenchWritesReport(t *testing.T) {
	if testing.Short() {
		t.Skip("bench suite is seconds-long; skipped in -short")
	}
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-bench", "-out", dir}, &stdout, &stderr); err != nil {
		t.Fatalf("bench: %v\nstderr:\n%s", err, stderr.String())
	}
	rep, err := experiment.ReadBenchFile(dir + "/BENCH_4.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) == 0 || rep.CalibrationNS <= 0 {
		t.Fatalf("bench report malformed: %+v", rep)
	}
	for _, e := range rep.Entries {
		if e.NSPerSimCycle <= 0 || e.SimCycles <= 0 {
			t.Fatalf("bench entry %s has empty measurements: %+v", e.Name, e)
		}
	}
	// Comparing a report against itself must pass the gate...
	if regs := rep.Compare(rep, 0.15); len(regs) != 0 {
		t.Fatalf("self-comparison reported regressions: %v", regs)
	}
	// ...and a doctored 2x-faster baseline must fail it.
	faster := *rep
	faster.Entries = append([]experiment.BenchEntryResult(nil), rep.Entries...)
	for i := range faster.Entries {
		faster.Entries[i].NSPerSimCycle /= 2
	}
	if regs := rep.Compare(&faster, 0.15); len(regs) == 0 {
		t.Fatal("2x regression not detected against doctored baseline")
	}
}

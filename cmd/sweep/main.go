// Command sweep regenerates the paper's figures. It prints each table to
// stdout and, with -out, also writes CSV files.
//
// Usage:
//
//	sweep [-figure all|8|9|10|10s|11a|11b|11c] [-quick] [-seed N] [-out DIR]
//	      [-workers N] [-progress]
//
// Simulations within a figure are independent, so by default they are
// fanned across one worker per CPU; results are byte-identical to a
// serial (-workers 1) run.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"alpha21364/internal/experiment"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	figure := flag.String("figure", "all", "which figure to regenerate (all, 8, 9, 10, 10s, 11a, 11b, 11c)")
	quick := flag.Bool("quick", false, "shorter runs and sparser sweeps")
	seed := flag.Uint64("seed", 1, "simulation seed")
	out := flag.String("out", "", "directory for CSV output (optional)")
	plot := flag.Bool("plot", false, "also render ASCII BNF charts for timing panels")
	verify := flag.Bool("verify", false, "rerun everything and check the paper's claims (ignores -figure)")
	markdown := flag.Bool("markdown", false, "with -verify, emit the EXPERIMENTS.md results table")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = one per CPU, 1 = serial)")
	progress := flag.Bool("progress", false, "log each completed simulation job to stderr")
	flag.Parse()

	o := experiment.Options{Quick: *quick, Seed: *seed, Workers: *workers}
	if *progress {
		start := time.Now()
		o.Progress = func(done, total int, label string) {
			log.Printf("[%3d/%3d %6s] %s", done, total, time.Since(start).Round(time.Second), label)
		}
	}
	if *verify {
		dataset, err := experiment.CollectDataset(o)
		if err != nil {
			log.Fatal(err)
		}
		verdicts := experiment.Verify(dataset)
		if *markdown {
			fmt.Print(experiment.VerdictMarkdown(verdicts))
		} else {
			fmt.Println(experiment.VerdictTable(verdicts).Format())
		}
		bad := 0
		for _, v := range verdicts {
			if !v.OK {
				bad++
			}
		}
		log.Printf("%d/%d claims reproduced", len(verdicts)-bad, len(verdicts))
		return
	}
	want := func(name string) bool { return *figure == "all" || *figure == name }
	emitted := false

	emit := func(name string, tb experiment.Table) {
		emitted = true
		fmt.Println(tb.Format())
		if *out == "" {
			return
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(*out, "figure"+name+".csv")
		if err := os.WriteFile(path, []byte(tb.CSV()), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", path)
	}
	emitPanel := func(name string, p experiment.Panel) {
		if *plot {
			fmt.Println(p.Plot(72, 24))
		}
		emit(name, p.Table())
	}
	panelName := func(title string) string {
		s := strings.ToLower(title)
		s = strings.NewReplacer(" ", "-", ",", "", "(", "", ")", "", "/", "-").Replace(s)
		return s
	}

	start := time.Now()
	if want("8") {
		f8, err := experiment.Figure8(o)
		if err != nil {
			log.Fatal(err)
		}
		emit("8", f8.Table())
	}
	if want("9") {
		f9, err := experiment.Figure9(o)
		if err != nil {
			log.Fatal(err)
		}
		emit("9", f9.Table())
	}
	if want("10") {
		panels, err := experiment.Figure10(o)
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range panels {
			emitPanel("10-"+panelName(p.Title), p)
		}
	}
	if want("10s") {
		p, err := experiment.Figure10Saturation(o)
		if err != nil {
			log.Fatal(err)
		}
		emitPanel("10s-"+panelName(p.Title), p)
	}
	type panelFn struct {
		name string
		fn   func(experiment.Options) (experiment.Panel, error)
	}
	for _, pf := range []panelFn{
		{"11a", experiment.Figure11a},
		{"11b", experiment.Figure11b},
		{"11c", experiment.Figure11c},
	} {
		if !want(pf.name) {
			continue
		}
		p, err := pf.fn(o)
		if err != nil {
			log.Fatal(err)
		}
		emitPanel(pf.name, p)
	}
	if !emitted {
		log.Fatalf("unknown figure %q (want all, 8, 9, 10, 10s, 11a, 11b, 11c)", *figure)
	}
	log.Printf("done in %v", time.Since(start).Round(time.Second))
}

// Command sweep is a thin shell over the Scenario/Runner API: it loads
// and saves declarative simulation Specs, executes them through the
// context-aware streaming Runner, regenerates the paper's figures (which
// are canned Specs), runs scenario matrices, records/replays injection
// traces, and runs the benchmark suite. Tables (or, with -json, Result
// JSONL) go to stdout; diagnostics and -progress lines go to stderr, so
// piping stdout stays machine-readable. With -out it also writes CSV
// files and Result JSONL documents.
//
// Usage:
//
//	sweep -spec FILE [-out DIR] [-workers N] [-progress] [-json] [-stable]
//	sweep -emit-spec [-figure F | -matrix ... | -run ...]   > specs.json
//	sweep [-figure all|8|9|10|10s|11a|11b|11c] [-quick] [-seed N] [-out DIR]
//	      [-workers N] [-progress] [-json] [-check] [-metrics] [-stable]
//	      [-reps N [-confidence C]]
//	sweep -matrix [-algos A,B] [-patterns P,Q] [-processes X,Y] [-rates R1,R2]
//	      [-model M] [-size WxH] [-cycles N]
//	sweep -run [-algo A] [-pattern P] [-process X] [-rate R] [-size WxH]
//	      [-record FILE | -replay FILE]
//	sweep -bench [-out DIR] [-bench-baseline BENCH_10.json]
//	sweep -list
//
// Any sweep mode (figure, matrix, run, spec) accepts -cache-dir DIR to
// serve previously completed points from a content-addressed result
// cache and persist new ones as they finish, -resume to insist that
// prior progress exists (an interrupted run picks up exactly where it
// was killed), and -shards N to decompose each sweep into about N
// independently runnable shard specs. -fleet HOST:PORT,... dispatches
// those shards to remote sweepd workers (internal/fleet) instead of
// simulating in-process, with -fleet-timeout bounding each attempt and
// -fleet-retries bounding re-dispatch after a worker fails. Results are
// byte-identical to an uncached, unsharded, fleetless run.
//
// -metrics enables the telemetry layer (internal/obs) on every timing
// simulation: each emitted point carries an observation-only snapshot,
// and with -out a <name>.metrics.json sidecar collects them. -stable
// zeroes volatile fields (wall-clock durations) in emitted Results so
// two runs of the same spec compare byte-identical — the canonical
// normalization for warm-cache rerun checks.
//
// -cpuprofile and -memprofile write pprof profiles for any mode.
// Contradictory flag combinations (for example -record with -matrix, or
// -replay with -pattern) are rejected with an error instead of silently
// ignoring flags. Simulations within a figure or matrix are independent,
// so by default they are fanned across one worker per CPU; results are
// byte-identical to a serial (-workers 1) run.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"alpha21364/internal/cache"
	"alpha21364/internal/core"
	"alpha21364/internal/experiment"
	"alpha21364/internal/fleet"
	"alpha21364/internal/prof"
	"alpha21364/internal/traffic"
	"alpha21364/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return // -h printed usage; asking for help is not a failure
		}
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(1)
	}
}

// app carries the output streams: results (tables or JSONL) go to out,
// progress and diagnostics to the logger on errW.
type app struct {
	out    io.Writer
	log    *log.Logger
	json   bool
	dir    string // -out directory, "" for none
	stable bool   // -stable: StripVolatile every Result before emission
	// exec runs one Spec — through a plain Runner, or through the
	// sharded/cached Coordinator when -cache-dir or -shards is given.
	exec func(experiment.Spec) (*experiment.Result, error)
}

// emitResult prints one Result to stdout — as JSONL with -json, as a
// formatted table otherwise — and mirrors it into the -out directory.
func (a *app) emitResult(res *experiment.Result, tb experiment.Table, name string) error {
	if a.json {
		if err := res.EncodeJSONL(a.out); err != nil {
			return err
		}
	} else {
		fmt.Fprintln(a.out, tb.Format())
	}
	if err := a.writeCSV(name, tb); err != nil {
		return err
	}
	return a.writeJSONL(name, res)
}

func run(args []string, stdout, stderr io.Writer) error {
	logger := log.New(stderr, "sweep: ", 0)
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)

	figure := fs.String("figure", "all", "which figure to regenerate (all, 8, 9, 10, 10s, 11a, 11b, 11c)")
	quick := fs.Bool("quick", false, "shorter runs and sparser sweeps")
	seed := fs.Uint64("seed", 1, "simulation seed")
	out := fs.String("out", "", "directory for CSV/JSONL output (optional)")
	plot := fs.Bool("plot", false, "also render ASCII BNF charts for timing panels")
	verify := fs.Bool("verify", false, "rerun everything and check the paper's claims")
	markdown := fs.Bool("markdown", false, "with -verify, emit the EXPERIMENTS.md results table")
	workers := fs.Int("workers", 0, "concurrent simulations (0 = one per CPU, 1 = serial)")
	torusShards := fs.Int("torus-shards", 0, "spatially shard each timing simulation into this many row bands, each on its own engine with CMB lookahead synchronization (results stay byte-identical; 0 = single engine)")
	checkFlag := fs.Bool("check", false, "enable the online invariant oracle (conservation, VC bounds, grant legality, deadlock watchdog) for every simulation")
	metricsFlag := fs.Bool("metrics", false, "enable the telemetry layer for every timing simulation: each point carries an internal/obs snapshot, and with -out a <name>.metrics.json sidecar is written")
	stable := fs.Bool("stable", false, "zero volatile fields (wall-clock durations) in emitted Results, so two runs of the same spec compare byte-identical")
	reps := fs.Int("reps", 0, "replications per point: run each point N times with derived seeds and attach mean/stddev/confidence-interval statistics (0 or 1 = single run)")
	confidence := fs.Float64("confidence", 0, "confidence level of the -reps interval (default 0.95)")
	progress := fs.Bool("progress", false, "log Runner events (each completed simulation) to stderr")
	jsonOut := fs.Bool("json", false, "stream Result JSONL to stdout instead of formatted tables")

	list := fs.Bool("list", false, "list algorithms, patterns, processes, models, and figures, then exit")
	matrix := fs.Bool("matrix", false, "run a scenario matrix (algorithms x patterns x processes x rates)")
	runOne := fs.Bool("run", false, "run a single scenario (implied by -record/-replay)")
	algos := fs.String("algos", "SPAA-rotary,PIM1,WFA-rotary", "comma-separated algorithms for -matrix")
	patterns := fs.String("patterns", strings.Join(traffic.PatternNames(), ","), "comma-separated destination patterns for -matrix")
	processes := fs.String("processes", strings.Join(workload.ProcessNames(), ","), "comma-separated arrival processes for -matrix")
	rates := fs.String("rates", "0.01,0.03", "comma-separated injection rates for -matrix")
	size := fs.String("size", "8x8", "torus size WxH for -matrix and -run")
	cycles := fs.Int("cycles", 0, "router cycles per simulation (0 = figure default)")
	algo := fs.String("algo", "SPAA-rotary", "algorithm for -run")
	pattern := fs.String("pattern", "random", "destination pattern for -run")
	process := fs.String("process", "bernoulli", "arrival process for -run")
	model := fs.String("model", "coherence", "transaction model for -run and -matrix")
	rate := fs.Float64("rate", 0.03, "injection rate for -run")
	record := fs.String("record", "", "with -run, record the injection stream to this trace file")
	replay := fs.String("replay", "", "with -run, replay a recorded trace instead of generating traffic")

	specFile := fs.String("spec", "", "load a Spec (or Spec array) JSON file and run it through the Runner")
	emitSpec := fs.Bool("emit-spec", false, "print the selected figure/matrix/run as Spec JSON instead of running")
	cacheDir := fs.String("cache-dir", "", "content-addressed result cache directory: completed points are served from it and new ones persisted to it")
	resume := fs.Bool("resume", false, "with -cache-dir, require previously completed points for this invocation and simulate only the missing ones")
	shards := fs.Int("shards", 0, "decompose each sweep into about this many shard specs (0 = one shard per point)")
	fleetAddrs := fs.String("fleet", "", "comma-separated sweepd worker addresses (host:port): dispatch shards to the fleet instead of simulating in-process")
	fleetTimeout := fs.Duration("fleet-timeout", fleet.DefaultTimeout, "with -fleet, per-attempt shard timeout before the worker is declared hung and the shard reassigned")
	fleetRetries := fs.Int("fleet-retries", fleet.DefaultRetries, "with -fleet, how many times a failed shard is re-dispatched (0 = single attempt)")
	bench := fs.Bool("bench", false, "run the benchmark suite and write BENCH_10.json")
	benchBaseline := fs.String("bench-baseline", "", "with -bench, compare against this BENCH_*.json and fail on >15% regression")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")

	if err := fs.Parse(args); err != nil {
		return err
	}

	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if err := rejectContradictions(set); err != nil {
		return err
	}
	if err := rejectValueContradictions(set, *reps, *figure); err != nil {
		return err
	}

	stopProf, err := prof.Start(*cpuprofile, *memprofile, logger.Printf)
	if err != nil {
		return err
	}
	defer stopProf()

	a := &app{out: stdout, log: logger, json: *jsonOut, dir: *out, stable: *stable}

	o := experiment.Options{
		Quick: *quick, Seed: *seed, Workers: *workers,
		Check: *checkFlag, Metrics: *metricsFlag,
		Replications: *reps, Confidence: *confidence,
		TorusShards: *torusShards,
	}
	var eventSink func(experiment.Event)
	var runnerOpts []experiment.RunnerOption
	runnerOpts = append(runnerOpts, experiment.WithWorkers(*workers))
	if *progress {
		start := time.Now()
		o.Progress = func(done, total int, label string) {
			logger.Printf("[%3d/%3d %6s] %s", done, total, time.Since(start).Round(time.Second), label)
		}
		eventSink = func(e experiment.Event) {
			elapsed := time.Since(start).Round(time.Second)
			switch e.Type {
			case experiment.EventRunStart:
				logger.Printf("[  0/%3d %6s] start %s", e.Total, elapsed, e.Label)
			case experiment.EventPointDone:
				logger.Printf("[%3d/%3d %6s] %s", e.Done, e.Total, elapsed, e.Label)
			case experiment.EventSeriesDone:
				logger.Printf("[%3d/%3d %6s] series done: %s", e.Done, e.Total, elapsed, e.Series)
			}
		}
		runnerOpts = append(runnerOpts, experiment.WithEventSink(eventSink))
	}

	var store *cache.Store
	if *cacheDir != "" {
		store, err = cache.Open(*cacheDir)
		if err != nil {
			return err
		}
	}
	var fl *fleet.Fleet
	if *fleetAddrs != "" {
		fl, err = fleet.New(splitList(*fleetAddrs),
			fleet.WithTimeout(*fleetTimeout),
			fleet.WithRetries(*fleetRetries),
			fleet.WithLogf(logger.Printf),
		)
		if err != nil {
			return err
		}
		defer fl.Close()
	}
	if store == nil && *shards == 0 && fl == nil {
		a.exec = func(sp experiment.Spec) (*experiment.Result, error) {
			res, err := experiment.NewRunner(runnerOpts...).Run(context.Background(), sp)
			if err == nil && a.stable {
				experiment.StripVolatile(res)
			}
			return res, err
		}
	} else {
		a.exec = func(sp experiment.Spec) (*experiment.Result, error) {
			copts := []experiment.CoordinatorOption{
				experiment.WithCoordinatorWorkers(*workers),
				experiment.WithShards(*shards),
			}
			if store != nil {
				copts = append(copts, experiment.WithCache(store))
			}
			if fl != nil {
				copts = append(copts, experiment.WithShardExecutor(fl))
			}
			if eventSink != nil {
				copts = append(copts, experiment.WithCoordinatorEventSink(eventSink))
			}
			co := experiment.NewCoordinator(copts...)
			res, err := co.Run(context.Background(), sp)
			if err == nil {
				st := co.Stats()
				logger.Printf("cache: %d/%d points cached, %d simulated, %d shard(s)",
					st.CachedPoints, st.TotalPoints, st.SimulatedPoints, st.Shards)
				if fl != nil {
					logger.Printf("fleet: %d shard attempt(s), %d retried", st.ShardAttempts, st.ShardRetries)
				}
				if a.stable {
					experiment.StripVolatile(res)
				}
			}
			return res, err
		}
	}
	if *resume {
		if err := checkResumable(store, logger, func() ([]experiment.Spec, error) {
			if *specFile != "" {
				return experiment.ReadSpecFile(*specFile)
			}
			return specsFromFlags(o, *figure, *matrix, *runOne,
				*algos, *patterns, *processes, *rates, *model, *size, *cycles,
				*algo, *pattern, *process, *rate, "", "")
		}); err != nil {
			return err
		}
	}

	switch {
	case *list:
		a.printLists()
		return nil
	case *emitSpec:
		specs, err := specsFromFlags(o, *figure, *matrix, *runOne || *record != "" || *replay != "",
			*algos, *patterns, *processes, *rates, *model, *size, *cycles,
			*algo, *pattern, *process, *rate, *record, *replay)
		if err != nil {
			return err
		}
		data, err := experiment.EncodeSpecs(specs)
		if err != nil {
			return err
		}
		_, err = a.out.Write(data)
		return err
	case *specFile != "":
		specs, err := experiment.ReadSpecFile(*specFile)
		if err != nil {
			return err
		}
		return a.runSpecs(specs, *plot)
	case *bench:
		return a.runBench(*benchBaseline)
	case *matrix:
		sp, err := matrixSpec(o, *algos, *patterns, *processes, *rates, *model, *size, *cycles)
		if err != nil {
			return err
		}
		start := time.Now()
		res, err := a.exec(sp)
		if err != nil {
			return err
		}
		if err := a.emitResult(res, res.ScenarioTable(), "scenario-matrix"); err != nil {
			return err
		}
		points := 0
		for _, s := range res.Series {
			points += len(s.Points)
		}
		logger.Printf("%d scenarios in %v", points, time.Since(start).Round(time.Second))
		return nil
	case *runOne || *record != "" || *replay != "":
		sp, err := runSpecFromFlags(o, *algo, *pattern, *process, *model, *rate, *size, *cycles, *record, *replay)
		if err != nil {
			return err
		}
		start := time.Now()
		res, err := a.exec(sp)
		if err != nil {
			return err
		}
		if err := a.printSingleRun(res, *size, *record, *replay); err != nil {
			return err
		}
		if err := a.writeJSONL("run", res); err != nil {
			return err
		}
		logger.Printf("done in %v", time.Since(start).Round(time.Second))
		return nil
	case *verify:
		dataset, err := experiment.CollectDataset(o)
		if err != nil {
			return err
		}
		verdicts := experiment.Verify(dataset)
		if *markdown {
			fmt.Fprint(a.out, experiment.VerdictMarkdown(verdicts))
		} else {
			fmt.Fprintln(a.out, experiment.VerdictTable(verdicts).Format())
		}
		bad := 0
		for _, v := range verdicts {
			if !v.OK {
				bad++
			}
		}
		logger.Printf("%d/%d claims reproduced", len(verdicts)-bad, len(verdicts))
		return nil
	}

	// Figure mode: every figure is a set of canned Specs.
	names := []string{*figure}
	if *figure == "all" {
		names = experiment.FigureSpecNames()
	}
	start := time.Now()
	for _, name := range names {
		specs, err := experiment.FigureSpecs(name, o)
		if err != nil {
			return err
		}
		if err := a.runFigureSpecs(name, specs, *plot); err != nil {
			return err
		}
	}
	logger.Printf("done in %v", time.Since(start).Round(time.Second))
	return nil
}

// contradiction is one pair of flags where setting both would silently
// override or ignore one of them; rejectContradictions fails fast instead.
type contradiction struct {
	a, b, why string
}

// requirement is a flag that is meaningless without another flag.
type requirement struct {
	flag, needs, why string
}

// contradictions is the full rule table, built once; main_test.go
// enumerates it and proves every rule actually rejects its pair.
var contradictions = buildContradictions()

// requirements lists the dependent flags; enumerated by the same test.
var requirements = []requirement{
	{"bench-baseline", "bench", "the baseline comparison is part of bench mode"},
	{"resume", "cache-dir", "resuming reads completed points from the cache"},
	{"fleet-timeout", "fleet", "the attempt timeout governs fleet dispatch"},
	{"fleet-retries", "fleet", "the retry budget governs fleet dispatch"},
}

func buildContradictions() []contradiction {
	var rules []contradiction
	add := func(a, b, why string) { rules = append(rules, contradiction{a, b, why}) }
	// -spec fully describes the work; every selection flag contradicts it.
	// (The execution flags -workers/-progress/-json/-out and the cache
	// flags -cache-dir/-resume/-shards deliberately remain compatible:
	// they change how a spec runs, never what it means.)
	for _, f := range []string{"figure", "matrix", "run", "verify", "bench", "quick", "seed", "cycles", "size",
		"algo", "algos", "pattern", "patterns", "process", "processes", "model", "rate", "rates", "record", "replay",
		"check", "metrics", "reps", "confidence", "torus-shards"} {
		add("spec", f, "a spec file fixes the whole scenario; edit the file instead")
	}
	add("emit-spec", "spec", "emitting a loaded spec is a copy; use the file directly")
	add("emit-spec", "verify", "claim verification has no single spec form")
	add("emit-spec", "bench", "the bench suite is fixed; run it directly")
	add("emit-spec", "json", "-emit-spec already writes Spec JSON to stdout")
	add("record", "replay", "a run either records or replays, not both")
	// Mode selectors are mutually exclusive.
	add("matrix", "run", "pick one mode")
	add("matrix", "figure", "pick one mode")
	add("matrix", "verify", "pick one mode")
	add("run", "figure", "pick one mode")
	add("run", "verify", "pick one mode")
	add("figure", "verify", "claim verification always reruns every figure")
	add("bench", "figure", "the bench suite is fixed")
	add("bench", "matrix", "the bench suite is fixed")
	add("bench", "run", "the bench suite is fixed")
	add("bench", "verify", "the bench suite is fixed")
	add("bench", "json", "the bench report is already machine-readable (BENCH_*.json)")
	add("bench", "workers", "the bench suite measures one simulation at a time (serial by design)")
	add("bench", "progress", "bench entries are logged to stderr as they finish")
	add("verify", "json", "claim verification emits verdict tables, not Results")
	// Replay fixes the injection stream; generative knobs contradict it.
	for _, f := range []string{"pattern", "rate", "process", "model"} {
		add("replay", f, "a replayed trace fixes the injection stream")
	}
	// Trace I/O belongs to single runs.
	for _, f := range []string{"record", "replay"} {
		add("matrix", f, "trace record/replay applies to single runs; use -run")
		add("figure", f, "trace record/replay applies to single runs; use -run")
	}
	// Single-run vs matrix axis flags.
	for _, pair := range [][2]string{
		{"run", "algos"}, {"run", "patterns"}, {"run", "processes"}, {"run", "rates"},
		{"matrix", "algo"}, {"matrix", "pattern"}, {"matrix", "process"}, {"matrix", "rate"},
	} {
		add(pair[0], pair[1], "that axis flag belongs to the other mode")
	}
	// The bench suite measures the unchecked, unreplicated hot path.
	add("bench", "check", "the bench suite measures the unchecked hot path; see DESIGN.md for the enabled cost model")
	add("bench", "reps", "the bench suite is fixed")
	add("bench", "metrics", "the bench suite measures the uninstrumented hot path")
	add("verify", "metrics", "claim verification compares measurements, not telemetry")
	// -stable normalizes emitted Results; modes that emit something else
	// have nothing to normalize.
	for _, f := range []string{"emit-spec", "bench", "verify", "list"} {
		add(f, "stable", "-stable normalizes emitted Results; this mode emits none")
	}
	// Recording replays every replication into the same trace file.
	add("record", "reps", "every replication would rewrite the trace file")
	// Trace record/replay pins the single-engine event stream; the sharded
	// assembly reproduces the same results but not the same trace file
	// interleavings, so the combination is rejected rather than trusted.
	for _, f := range []string{"record", "replay"} {
		add(f, "torus-shards", "trace record/replay runs on the single-engine path; drop -torus-shards")
	}
	add("bench", "torus-shards", "the bench suite fixes its own shard counts (see the timing-16x16-saturated entries)")
	add("verify", "torus-shards", "claim verification always reruns the figures single-engine")
	// The cache serves sweep results; modes that measure or emit
	// something other than sweep Results cannot use it.
	for _, f := range []string{"bench", "verify", "emit-spec", "list"} {
		add("cache-dir", f, "the result cache applies to sweep execution only")
		add("shards", f, "shard decomposition applies to sweep execution only")
		add("fleet", f, "fleet dispatch applies to sweep execution only")
	}
	// Record/replay specs bypass the cache: a file path does not
	// content-address the trace behind it.
	for _, f := range []string{"record", "replay"} {
		add("cache-dir", f, "trace record/replay bypasses the result cache; run without -cache-dir")
		// Trace files live on the local filesystem; a remote worker cannot
		// read or write them.
		add("fleet", f, "trace record/replay needs local trace files; run without -fleet")
	}
	return rules
}

// rejectContradictions fails fast on flag combinations where one flag
// would silently override or ignore another, walking the rule tables.
func rejectContradictions(set map[string]bool) error {
	for _, c := range contradictions {
		if set[c.a] && set[c.b] {
			return fmt.Errorf("-%s and -%s are contradictory: %s", c.a, c.b, c.why)
		}
	}
	for _, r := range requirements {
		if set[r.flag] && !set[r.needs] {
			return fmt.Errorf("-%s requires -%s: %s", r.flag, r.needs, r.why)
		}
	}
	return nil
}

// rejectValueContradictions catches flag combinations that depend on
// flag values rather than mere presence.
func rejectValueContradictions(set map[string]bool, reps int, figure string) error {
	if set["confidence"] && reps < 2 {
		return fmt.Errorf("-confidence requires -reps 2 or more (there is no interval over one run)")
	}
	if set["torus-shards"] && set["figure"] && (figure == "8" || figure == "9") {
		return fmt.Errorf("-torus-shards applies to timing simulations; figure %s uses the standalone arbiter model (no torus to shard)", figure)
	}
	return nil
}

// specsFromFlags builds the Spec(s) the current flags describe, for
// -emit-spec.
func specsFromFlags(o experiment.Options, figure string, matrix, runOne bool,
	algos, patterns, processes, rates, model, size string, cycles int,
	algo, pattern, process string, rate float64, record, replay string) ([]experiment.Spec, error) {
	switch {
	case matrix:
		sp, err := matrixSpec(o, algos, patterns, processes, rates, model, size, cycles)
		if err != nil {
			return nil, err
		}
		return []experiment.Spec{sp}, nil
	case runOne:
		sp, err := runSpecFromFlags(o, algo, pattern, process, model, rate, size, cycles, record, replay)
		if err != nil {
			return nil, err
		}
		return []experiment.Spec{sp}, nil
	default:
		return experiment.FigureSpecs(figure, o)
	}
}

// checkResumable enforces -resume's contract before any simulation: the
// cache must already hold at least one completed point for the specs
// this invocation is about to run. Without -resume a populated cache is
// still served — -resume only adds the "there must be prior progress"
// assertion, so a typo'd flag set cannot silently restart from scratch.
func checkResumable(store *cache.Store, logger *log.Logger, load func() ([]experiment.Spec, error)) error {
	specs, err := load()
	if err != nil {
		return err
	}
	found := 0
	for _, sp := range specs {
		key, err := experiment.SpecHash(sp)
		if err != nil {
			return err
		}
		cells, err := store.Cells(key)
		if err != nil {
			return err
		}
		found += len(cells)
	}
	if found == 0 {
		return fmt.Errorf("-resume: the cache holds no completed points for this invocation; drop -resume to start fresh")
	}
	logger.Printf("resume: %d completed point(s) already cached", found)
	return nil
}

// runSpecs executes loaded spec files, printing each result.
func (a *app) runSpecs(specs []experiment.Spec, plot bool) error {
	start := time.Now()
	for i, sp := range specs {
		res, err := a.exec(sp)
		if err != nil {
			return err
		}
		if plot && !a.json && sp.Mode != experiment.ModeStandalone {
			fmt.Fprintln(a.out, res.Panel().Plot(72, 24))
		}
		if err := a.emitResult(res, res.Table(), specSlug(sp, i)); err != nil {
			return err
		}
	}
	a.log.Printf("%d spec(s) in %v", len(specs), time.Since(start).Round(time.Second))
	return nil
}

// runFigureSpecs executes one figure's canned specs with the historical
// per-figure CSV naming: figure8.csv, figure10-<panel>.csv, figure11a.csv.
func (a *app) runFigureSpecs(figure string, specs []experiment.Spec, plot bool) error {
	for i, sp := range specs {
		res, err := a.exec(sp)
		if err != nil {
			return err
		}
		if plot && !a.json && sp.Mode != experiment.ModeStandalone {
			fmt.Fprintln(a.out, res.Panel().Plot(72, 24))
		}
		var tb experiment.Table
		if sp.Mode == experiment.ModeStandalone {
			// Keep the historical Figure 8/9 table layout.
			switch sp.Name {
			case "Figure 8":
				f8 := experiment.Figure8Result{
					LoadFractions:  sp.Standalone.Values,
					SaturationLoad: res.SaturationLoad,
					Curves:         res.Curves(),
				}
				tb = f8.Table()
			default:
				f9 := experiment.Figure9Result{
					Occupancies: sp.Standalone.Values,
					Curves:      res.Curves(),
				}
				tb = f9.Table()
			}
		} else {
			tb = res.Panel().Table()
		}
		name := "figure" + figure
		if len(specs) > 1 {
			name += "-" + specSlug(sp, i)
		}
		if err := a.emitResult(res, tb, name); err != nil {
			return err
		}
	}
	return nil
}

// specSlug derives a filesystem-friendly name for a spec's outputs.
func specSlug(sp experiment.Spec, i int) string {
	s := sp.Name
	if s == "" {
		s = fmt.Sprintf("spec-%d", i+1)
	}
	s = strings.ToLower(s)
	s = strings.NewReplacer(" ", "-", ",", "", "(", "", ")", "", "/", "-").Replace(s)
	return s
}

// printSingleRun prints the one-line summary of a single-scenario spec
// (or, with -json, its Result JSONL).
func (a *app) printSingleRun(res *experiment.Result, size, record, replay string) error {
	if len(res.Series) == 0 || len(res.Series[0].Points) == 0 {
		return fmt.Errorf("no result point")
	}
	if a.json {
		if err := res.EncodeJSONL(a.out); err != nil {
			return err
		}
	} else {
		s := res.Series[0]
		p := s.Points[0]
		what := fmt.Sprintf("%s/%s/%s/%s @ %g", s.Arbiter, s.Pattern, s.Process, modelName(s.Model), p.Rate)
		if replay != "" {
			what = fmt.Sprintf("%s replaying %s", s.Arbiter, replay)
		}
		fmt.Fprintf(a.out, "%s on %s: %.4f flits/router/ns @ %.1f ns avg (p50 %.0f / p95 %.0f / p99 %.0f ns), %d packets, %d txns\n",
			what, size, p.Throughput, p.AvgLatencyNS, p.LatencyP50NS, p.LatencyP95NS, p.LatencyP99NS, p.Packets, p.Completed)
	}
	if record != "" {
		a.log.Printf("recorded trace to %s", record)
	}
	return nil
}

func modelName(m string) string {
	if m == "" {
		return "coherence"
	}
	return m
}

// benchRegressionTolerance is the CI gate: a benchmark entry failing by
// more than this fraction against the committed baseline fails the run.
const benchRegressionTolerance = 0.15

// runBench executes the benchmark suite (experiment.RunBench: Spec-driven
// workloads through the ordinary Runner, plus the coordinated entry
// through the sharded Coordinator), writes BENCH_10.json, and, when a
// baseline is given, fails on >15% calibration-normalized regression.
func (a *app) runBench(baseline string) error {
	dir := a.dir
	if dir == "" {
		dir = "."
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	start := time.Now()
	rep, err := experiment.RunBench(context.Background())
	if err != nil {
		return err
	}
	for _, e := range rep.Entries {
		a.log.Printf("%-22s %8.1f ns/cycle  %7.2f allocs/cycle  %6.1f points/s",
			e.Name, e.NSPerSimCycle, e.AllocsPerCycle, e.PointsPerSec)
	}
	path := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", experiment.BenchVersion))
	if err := rep.WriteFile(path); err != nil {
		return err
	}
	a.log.Printf("wrote %s in %v (calibration %.2f ns/iter)", path,
		time.Since(start).Round(time.Millisecond), rep.CalibrationNS)
	if baseline == "" {
		return nil
	}
	base, err := experiment.ReadBenchFile(baseline)
	if err != nil {
		return err
	}
	regressions := rep.Compare(base, benchRegressionTolerance)
	for _, r := range regressions {
		a.log.Printf("REGRESSION: %s", r)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d benchmark regression(s) beyond %.0f%% against %s",
			len(regressions), 100*benchRegressionTolerance, baseline)
	}
	a.log.Printf("no regressions beyond %.0f%% against %s", 100*benchRegressionTolerance, baseline)
	return nil
}

// matrixSpec parses the -matrix flags into a Spec.
func matrixSpec(o experiment.Options, algos, patterns, processes, rates, model, size string, cycles int) (experiment.Spec, error) {
	var kinds []core.Kind
	for _, name := range splitList(algos) {
		k, err := core.ParseKind(name)
		if err != nil {
			return experiment.Spec{}, err
		}
		kinds = append(kinds, k)
	}
	var pats []traffic.Pattern
	for _, name := range splitList(patterns) {
		p, err := traffic.ParsePattern(name)
		if err != nil {
			return experiment.Spec{}, err
		}
		pats = append(pats, p)
	}
	procs := splitList(processes)
	var rs []float64
	for _, f := range splitList(rates) {
		r, err := strconv.ParseFloat(f, 64)
		if err != nil || r <= 0 {
			return experiment.Spec{}, fmt.Errorf("invalid rate %q", f)
		}
		rs = append(rs, r)
	}
	if len(kinds) == 0 || len(pats) == 0 || len(procs) == 0 || len(rs) == 0 {
		return experiment.Spec{}, fmt.Errorf("matrix needs at least one algorithm, pattern, process, and rate")
	}
	base, err := baseSetup(o, size, cycles, o.Seed)
	if err != nil {
		return experiment.Spec{}, err
	}
	base.Model = model
	sp := experiment.MatrixSpec(base, kinds, pats, procs, rs)
	sp.Name = "Scenario matrix"
	o.ApplyStudy(&sp)
	if err := sp.Validate(); err != nil {
		return experiment.Spec{}, err
	}
	return sp, nil
}

// runSpecFromFlags parses the -run flags into a single-scenario Spec.
func runSpecFromFlags(o experiment.Options, algo, pattern, process, model string,
	rate float64, size string, cycles int, record, replay string) (experiment.Spec, error) {
	base, err := baseSetup(o, size, cycles, o.Seed)
	if err != nil {
		return experiment.Spec{}, err
	}
	opts := []experiment.SpecOption{
		experiment.WithName("run"),
		experiment.WithTopology(base.Width, base.Height),
		experiment.WithArbiters(algo),
		experiment.WithCycles(base.Cycles),
		experiment.WithSeed(base.Seed),
	}
	if replay != "" {
		opts = append(opts, experiment.WithReplay(replay))
	} else {
		opts = append(opts,
			experiment.WithPatterns(pattern),
			experiment.WithProcesses(process),
			experiment.WithModel(model),
			experiment.WithRates(rate),
		)
		if record != "" {
			opts = append(opts, experiment.WithRecord(record))
		}
	}
	sp := experiment.NewSpec(opts...)
	o.ApplyStudy(&sp)
	if err := sp.Validate(); err != nil {
		return experiment.Spec{}, err
	}
	return sp, nil
}

func (a *app) printLists() {
	fmt.Fprintln(a.out, "algorithms:", strings.Join(core.KindNames(), ", "))
	fmt.Fprintln(a.out, "patterns:  ", strings.Join(traffic.PatternNames(), ", "))
	fmt.Fprintln(a.out, "processes: ", strings.Join(workload.ProcessNames(), ", "))
	fmt.Fprintln(a.out, "models:    ", strings.Join(workload.ModelNames(), ", "))
	fmt.Fprintln(a.out, "figures:   ", strings.Join(experiment.FigureSpecNames(), ", "))
}

func (a *app) writeCSV(name string, tb experiment.Table) error {
	if a.dir == "" {
		return nil
	}
	if err := os.MkdirAll(a.dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(a.dir, name+".csv")
	if err := os.WriteFile(path, []byte(tb.CSV()), 0o644); err != nil {
		return err
	}
	a.log.Printf("wrote %s", path)
	return nil
}

// writeJSONL writes the machine-readable Result stream next to the CSV.
func (a *app) writeJSONL(name string, res *experiment.Result) error {
	if a.dir == "" {
		return nil
	}
	if err := os.MkdirAll(a.dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(a.dir, name+".jsonl")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := res.EncodeJSONL(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	a.log.Printf("wrote %s", path)
	return a.writeMetricsSidecar(name, res)
}

// writeMetricsSidecar mirrors a metric-laden Result's telemetry into a
// standalone <name>.metrics.json document, then re-reads it to prove the
// file is loadable — a corrupt sidecar should fail the run that wrote
// it, not the consumer that scrapes it later.
func (a *app) writeMetricsSidecar(name string, res *experiment.Result) error {
	sc := experiment.MetricsSidecarOf(res)
	if sc == nil || a.dir == "" {
		return nil
	}
	path := filepath.Join(a.dir, name+".metrics.json")
	if err := sc.WriteFile(path); err != nil {
		return err
	}
	if _, err := experiment.ReadMetricsSidecarFile(path); err != nil {
		return fmt.Errorf("sidecar verification failed: %w", err)
	}
	a.log.Printf("wrote %s (%d snapshot(s))", path, len(sc.Points))
	return nil
}

// parseSize parses "WxH" into torus dimensions.
func parseSize(s string) (int, int, error) {
	parts := strings.SplitN(strings.ToLower(s), "x", 2)
	if len(parts) == 2 {
		w, errW := strconv.Atoi(strings.TrimSpace(parts[0]))
		h, errH := strconv.Atoi(strings.TrimSpace(parts[1]))
		if errW == nil && errH == nil && w >= 2 && h >= 2 {
			return w, h, nil
		}
	}
	return 0, 0, fmt.Errorf("invalid -size %q (want WxH, e.g. 8x8)", s)
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func baseSetup(o experiment.Options, size string, cycles int, seed uint64) (experiment.TimingSetup, error) {
	w, h, err := parseSize(size)
	if err != nil {
		return experiment.TimingSetup{}, err
	}
	if cycles <= 0 {
		cycles = o.TimingCycles()
	}
	return experiment.TimingSetup{Width: w, Height: h, Cycles: cycles, Seed: seed}, nil
}

// Command sweep regenerates the paper's figures, runs scenario matrices
// over the pluggable workload suite, and records/replays injection
// traces. It prints each table to stdout and, with -out, also writes CSV
// files.
//
// Usage:
//
//	sweep [-figure all|8|9|10|10s|11a|11b|11c] [-quick] [-seed N] [-out DIR]
//	      [-workers N] [-progress]
//	sweep -matrix [-algos A,B] [-patterns P,Q] [-processes X,Y] [-rates R1,R2]
//	      [-model M] [-size WxH] [-cycles N]
//	sweep -run [-algo A] [-pattern P] [-process X] [-rate R] [-size WxH]
//	      [-record FILE | -replay FILE]
//	sweep -list
//
// Simulations within a figure or matrix are independent, so by default
// they are fanned across one worker per CPU; results are byte-identical
// to a serial (-workers 1) run.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"alpha21364/internal/core"
	"alpha21364/internal/experiment"
	"alpha21364/internal/traffic"
	"alpha21364/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	figure := flag.String("figure", "all", "which figure to regenerate (all, 8, 9, 10, 10s, 11a, 11b, 11c)")
	quick := flag.Bool("quick", false, "shorter runs and sparser sweeps")
	seed := flag.Uint64("seed", 1, "simulation seed")
	out := flag.String("out", "", "directory for CSV output (optional)")
	plot := flag.Bool("plot", false, "also render ASCII BNF charts for timing panels")
	verify := flag.Bool("verify", false, "rerun everything and check the paper's claims (ignores -figure)")
	markdown := flag.Bool("markdown", false, "with -verify, emit the EXPERIMENTS.md results table")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = one per CPU, 1 = serial)")
	progress := flag.Bool("progress", false, "log each completed simulation job to stderr")

	list := flag.Bool("list", false, "list algorithms, patterns, processes, models, and figures, then exit")
	matrix := flag.Bool("matrix", false, "run a scenario matrix (algorithms x patterns x processes x rates)")
	runOne := flag.Bool("run", false, "run a single scenario (implied by -record/-replay)")
	algos := flag.String("algos", "SPAA-rotary,PIM1,WFA-rotary", "comma-separated algorithms for -matrix")
	patterns := flag.String("patterns", strings.Join(traffic.PatternNames(), ","), "comma-separated destination patterns for -matrix")
	processes := flag.String("processes", strings.Join(workload.ProcessNames(), ","), "comma-separated arrival processes for -matrix")
	rates := flag.String("rates", "0.01,0.03", "comma-separated injection rates for -matrix")
	size := flag.String("size", "8x8", "torus size WxH for -matrix and -run")
	cycles := flag.Int("cycles", 0, "router cycles per simulation (0 = figure default)")
	algo := flag.String("algo", "SPAA-rotary", "algorithm for -run")
	pattern := flag.String("pattern", "random", "destination pattern for -run")
	process := flag.String("process", "bernoulli", "arrival process for -run")
	model := flag.String("model", "coherence", "transaction model for -run and -matrix")
	rate := flag.Float64("rate", 0.03, "injection rate for -run")
	record := flag.String("record", "", "with -run, record the injection stream to this trace file")
	replay := flag.String("replay", "", "with -run, replay a recorded trace instead of generating traffic")
	flag.Parse()

	o := experiment.Options{Quick: *quick, Seed: *seed, Workers: *workers}
	if *progress {
		start := time.Now()
		o.Progress = func(done, total int, label string) {
			log.Printf("[%3d/%3d %6s] %s", done, total, time.Since(start).Round(time.Second), label)
		}
	}
	switch {
	case *list:
		printLists()
		return
	case *matrix:
		if *record != "" || *replay != "" {
			log.Fatal("-record/-replay apply to single runs; use -run")
		}
		runMatrix(o, *algos, *patterns, *processes, *rates, *model, *size, *cycles, *out)
		return
	case *runOne || *record != "" || *replay != "":
		runScenario(o, *algo, *pattern, *process, *model, *rate, *size, *cycles, *record, *replay)
		return
	}
	if *verify {
		dataset, err := experiment.CollectDataset(o)
		if err != nil {
			log.Fatal(err)
		}
		verdicts := experiment.Verify(dataset)
		if *markdown {
			fmt.Print(experiment.VerdictMarkdown(verdicts))
		} else {
			fmt.Println(experiment.VerdictTable(verdicts).Format())
		}
		bad := 0
		for _, v := range verdicts {
			if !v.OK {
				bad++
			}
		}
		log.Printf("%d/%d claims reproduced", len(verdicts)-bad, len(verdicts))
		return
	}
	want := func(name string) bool { return *figure == "all" || *figure == name }
	emitted := false

	emit := func(name string, tb experiment.Table) {
		emitted = true
		fmt.Println(tb.Format())
		writeCSV(*out, "figure"+name, tb)
	}
	emitPanel := func(name string, p experiment.Panel) {
		if *plot {
			fmt.Println(p.Plot(72, 24))
		}
		emit(name, p.Table())
	}
	panelName := func(title string) string {
		s := strings.ToLower(title)
		s = strings.NewReplacer(" ", "-", ",", "", "(", "", ")", "", "/", "-").Replace(s)
		return s
	}

	start := time.Now()
	if want("8") {
		f8, err := experiment.Figure8(o)
		if err != nil {
			log.Fatal(err)
		}
		emit("8", f8.Table())
	}
	if want("9") {
		f9, err := experiment.Figure9(o)
		if err != nil {
			log.Fatal(err)
		}
		emit("9", f9.Table())
	}
	if want("10") {
		panels, err := experiment.Figure10(o)
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range panels {
			emitPanel("10-"+panelName(p.Title), p)
		}
	}
	if want("10s") {
		p, err := experiment.Figure10Saturation(o)
		if err != nil {
			log.Fatal(err)
		}
		emitPanel("10s-"+panelName(p.Title), p)
	}
	type panelFn struct {
		name string
		fn   func(experiment.Options) (experiment.Panel, error)
	}
	for _, pf := range []panelFn{
		{"11a", experiment.Figure11a},
		{"11b", experiment.Figure11b},
		{"11c", experiment.Figure11c},
	} {
		if !want(pf.name) {
			continue
		}
		p, err := pf.fn(o)
		if err != nil {
			log.Fatal(err)
		}
		emitPanel(pf.name, p)
	}
	if !emitted {
		log.Fatalf("unknown figure %q (want all, 8, 9, 10, 10s, 11a, 11b, 11c)", *figure)
	}
	log.Printf("done in %v", time.Since(start).Round(time.Second))
}

// figureNames lists the -figure values printed by -list.
var figureNames = []string{"8", "9", "10", "10s", "11a", "11b", "11c"}

func printLists() {
	fmt.Println("algorithms:", strings.Join(core.KindNames(), ", "))
	fmt.Println("patterns:  ", strings.Join(traffic.PatternNames(), ", "))
	fmt.Println("processes: ", strings.Join(workload.ProcessNames(), ", "))
	fmt.Println("models:    ", strings.Join(workload.ModelNames(), ", "))
	fmt.Println("figures:   ", strings.Join(figureNames, ", "))
}

func writeCSV(dir, name string, tb experiment.Table) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(dir, name+".csv")
	if err := os.WriteFile(path, []byte(tb.CSV()), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", path)
}

// parseSize parses "WxH" into torus dimensions.
func parseSize(s string) (int, int) {
	parts := strings.SplitN(strings.ToLower(s), "x", 2)
	if len(parts) == 2 {
		w, errW := strconv.Atoi(strings.TrimSpace(parts[0]))
		h, errH := strconv.Atoi(strings.TrimSpace(parts[1]))
		if errW == nil && errH == nil && w >= 2 && h >= 2 {
			return w, h
		}
	}
	log.Fatalf("invalid -size %q (want WxH, e.g. 8x8)", s)
	return 0, 0
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func baseSetup(o experiment.Options, size string, cycles int, seed uint64) experiment.TimingSetup {
	w, h := parseSize(size)
	if cycles <= 0 {
		cycles = o.TimingCycles()
	}
	return experiment.TimingSetup{Width: w, Height: h, Cycles: cycles, Seed: seed}
}

func runMatrix(o experiment.Options, algos, patterns, processes, rates, model, size string, cycles int, out string) {
	var kinds []core.Kind
	for _, name := range splitList(algos) {
		k, err := core.ParseKind(name)
		if err != nil {
			log.Fatal(err)
		}
		kinds = append(kinds, k)
	}
	var pats []traffic.Pattern
	for _, name := range splitList(patterns) {
		p, err := traffic.ParsePattern(name)
		if err != nil {
			log.Fatal(err)
		}
		pats = append(pats, p)
	}
	procs := splitList(processes)
	for _, name := range procs {
		if _, err := workload.NewProcess(name, 0); err != nil {
			log.Fatal(err)
		}
	}
	var rs []float64
	for _, f := range splitList(rates) {
		r, err := strconv.ParseFloat(f, 64)
		if err != nil || r <= 0 {
			log.Fatalf("invalid rate %q", f)
		}
		rs = append(rs, r)
	}
	if len(kinds) == 0 || len(pats) == 0 || len(procs) == 0 || len(rs) == 0 {
		log.Fatal("matrix needs at least one algorithm, pattern, process, and rate")
	}
	if _, err := workload.NewModel(model); err != nil {
		log.Fatal(err)
	}
	base := baseSetup(o, size, cycles, o.Seed)
	base.Model = model
	start := time.Now()
	results, err := experiment.ScenarioMatrix(o, base, kinds, pats, procs, rs)
	if err != nil {
		log.Fatal(err)
	}
	tb := experiment.ScenarioTable(results)
	fmt.Println(tb.Format())
	writeCSV(out, "scenario-matrix", tb)
	log.Printf("%d scenarios in %v", len(results), time.Since(start).Round(time.Second))
}

func runScenario(o experiment.Options, algo, pattern, process, model string, rate float64, size string, cycles int, record, replay string) {
	if record != "" && replay != "" {
		log.Fatal("-record and -replay are mutually exclusive")
	}
	k, err := core.ParseKind(algo)
	if err != nil {
		log.Fatal(err)
	}
	setup := baseSetup(o, size, cycles, o.Seed)
	setup.Kind = k
	setup.Rate = rate
	setup.Process = process
	setup.Model = model
	setup.RecordTo = record
	setup.ReplayFrom = replay
	if replay == "" {
		p, err := traffic.ParsePattern(pattern)
		if err != nil {
			log.Fatal(err)
		}
		setup.Pattern = p
	}
	start := time.Now()
	res, err := experiment.RunTiming(setup)
	if err != nil {
		log.Fatal(err)
	}
	what := fmt.Sprintf("%v/%v/%s/%s @ %g", k, setup.Pattern, process, model, rate)
	if replay != "" {
		what = fmt.Sprintf("%v replaying %s", k, replay)
	}
	fmt.Printf("%s on %s: %.4f flits/router/ns @ %.1f ns avg (p99 %.1f ns), %d packets, %d txns\n",
		what, size, res.Throughput, res.AvgLatencyNS, res.AvgLatencyP99, res.Packets, res.Completed)
	if record != "" {
		log.Printf("recorded trace to %s", record)
	}
	log.Printf("done in %v", time.Since(start).Round(time.Second))
}

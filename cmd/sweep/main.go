// Command sweep is a thin shell over the Scenario/Runner API: it loads
// and saves declarative simulation Specs, executes them through the
// context-aware streaming Runner, regenerates the paper's figures (which
// are canned Specs), runs scenario matrices, and records/replays
// injection traces. It prints each table to stdout and, with -out, also
// writes CSV files and machine-readable Result JSONL.
//
// Usage:
//
//	sweep -spec FILE [-out DIR] [-workers N] [-progress]
//	sweep -emit-spec [-figure F | -matrix ... | -run ...]   > specs.json
//	sweep [-figure all|8|9|10|10s|11a|11b|11c] [-quick] [-seed N] [-out DIR]
//	      [-workers N] [-progress]
//	sweep -matrix [-algos A,B] [-patterns P,Q] [-processes X,Y] [-rates R1,R2]
//	      [-model M] [-size WxH] [-cycles N]
//	sweep -run [-algo A] [-pattern P] [-process X] [-rate R] [-size WxH]
//	      [-record FILE | -replay FILE]
//	sweep -bench [-out DIR]
//	sweep -list
//
// Contradictory flag combinations (for example -record with -matrix, or
// -replay with -pattern) are rejected with an error instead of silently
// ignoring flags. Simulations within a figure or matrix are independent,
// so by default they are fanned across one worker per CPU; results are
// byte-identical to a serial (-workers 1) run.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"alpha21364/internal/core"
	"alpha21364/internal/experiment"
	"alpha21364/internal/traffic"
	"alpha21364/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	figure := flag.String("figure", "all", "which figure to regenerate (all, 8, 9, 10, 10s, 11a, 11b, 11c)")
	quick := flag.Bool("quick", false, "shorter runs and sparser sweeps")
	seed := flag.Uint64("seed", 1, "simulation seed")
	out := flag.String("out", "", "directory for CSV/JSONL output (optional)")
	plot := flag.Bool("plot", false, "also render ASCII BNF charts for timing panels")
	verify := flag.Bool("verify", false, "rerun everything and check the paper's claims")
	markdown := flag.Bool("markdown", false, "with -verify, emit the EXPERIMENTS.md results table")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = one per CPU, 1 = serial)")
	progress := flag.Bool("progress", false, "log Runner events (each completed simulation) to stderr")

	list := flag.Bool("list", false, "list algorithms, patterns, processes, models, and figures, then exit")
	matrix := flag.Bool("matrix", false, "run a scenario matrix (algorithms x patterns x processes x rates)")
	runOne := flag.Bool("run", false, "run a single scenario (implied by -record/-replay)")
	algos := flag.String("algos", "SPAA-rotary,PIM1,WFA-rotary", "comma-separated algorithms for -matrix")
	patterns := flag.String("patterns", strings.Join(traffic.PatternNames(), ","), "comma-separated destination patterns for -matrix")
	processes := flag.String("processes", strings.Join(workload.ProcessNames(), ","), "comma-separated arrival processes for -matrix")
	rates := flag.String("rates", "0.01,0.03", "comma-separated injection rates for -matrix")
	size := flag.String("size", "8x8", "torus size WxH for -matrix and -run")
	cycles := flag.Int("cycles", 0, "router cycles per simulation (0 = figure default)")
	algo := flag.String("algo", "SPAA-rotary", "algorithm for -run")
	pattern := flag.String("pattern", "random", "destination pattern for -run")
	process := flag.String("process", "bernoulli", "arrival process for -run")
	model := flag.String("model", "coherence", "transaction model for -run and -matrix")
	rate := flag.Float64("rate", 0.03, "injection rate for -run")
	record := flag.String("record", "", "with -run, record the injection stream to this trace file")
	replay := flag.String("replay", "", "with -run, replay a recorded trace instead of generating traffic")

	specFile := flag.String("spec", "", "load a Spec (or Spec array) JSON file and run it through the Runner")
	emitSpec := flag.Bool("emit-spec", false, "print the selected figure/matrix/run as Spec JSON instead of running")
	bench := flag.Bool("bench", false, "run the benchmark smoke suite and write BENCH_*.json results")
	flag.Parse()

	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	rejectContradictions(set)

	o := experiment.Options{Quick: *quick, Seed: *seed, Workers: *workers}
	var runnerOpts []experiment.RunnerOption
	runnerOpts = append(runnerOpts, experiment.WithWorkers(*workers))
	if *progress {
		start := time.Now()
		o.Progress = func(done, total int, label string) {
			log.Printf("[%3d/%3d %6s] %s", done, total, time.Since(start).Round(time.Second), label)
		}
		runnerOpts = append(runnerOpts, experiment.WithEventSink(func(e experiment.Event) {
			elapsed := time.Since(start).Round(time.Second)
			switch e.Type {
			case experiment.EventRunStart:
				log.Printf("[  0/%3d %6s] start %s", e.Total, elapsed, e.Label)
			case experiment.EventPointDone:
				log.Printf("[%3d/%3d %6s] %s", e.Done, e.Total, elapsed, e.Label)
			case experiment.EventSeriesDone:
				log.Printf("[%3d/%3d %6s] series done: %s", e.Done, e.Total, elapsed, e.Series)
			}
		}))
	}

	switch {
	case *list:
		printLists()
		return
	case *emitSpec:
		specs := specsFromFlags(o, *figure, *matrix, *runOne || *record != "" || *replay != "",
			*algos, *patterns, *processes, *rates, *model, *size, *cycles,
			*algo, *pattern, *process, *rate, *record, *replay)
		data, err := experiment.EncodeSpecs(specs)
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(data)
		return
	case *specFile != "":
		specs, err := experiment.ReadSpecFile(*specFile)
		if err != nil {
			log.Fatal(err)
		}
		runSpecs(runnerOpts, specs, *out, *plot)
		return
	case *bench:
		runBench(runnerOpts, *out)
		return
	case *matrix:
		sp := matrixSpec(o, *algos, *patterns, *processes, *rates, *model, *size, *cycles)
		start := time.Now()
		res := runSpec(runnerOpts, sp)
		tb := res.ScenarioTable()
		fmt.Println(tb.Format())
		writeCSV(*out, "scenario-matrix", tb)
		writeJSONL(*out, "scenario-matrix", res)
		points := 0
		for _, s := range res.Series {
			points += len(s.Points)
		}
		log.Printf("%d scenarios in %v", points, time.Since(start).Round(time.Second))
		return
	case *runOne || *record != "" || *replay != "":
		sp := runSpecFromFlags(o, *algo, *pattern, *process, *model, *rate, *size, *cycles, *record, *replay)
		start := time.Now()
		res := runSpec(runnerOpts, sp)
		printSingleRun(res, *size, *record, *replay)
		writeJSONL(*out, "run", res)
		log.Printf("done in %v", time.Since(start).Round(time.Second))
		return
	}
	if *verify {
		dataset, err := experiment.CollectDataset(o)
		if err != nil {
			log.Fatal(err)
		}
		verdicts := experiment.Verify(dataset)
		if *markdown {
			fmt.Print(experiment.VerdictMarkdown(verdicts))
		} else {
			fmt.Println(experiment.VerdictTable(verdicts).Format())
		}
		bad := 0
		for _, v := range verdicts {
			if !v.OK {
				bad++
			}
		}
		log.Printf("%d/%d claims reproduced", len(verdicts)-bad, len(verdicts))
		return
	}

	// Figure mode: every figure is a set of canned Specs.
	names := []string{*figure}
	if *figure == "all" {
		names = experiment.FigureSpecNames()
	}
	start := time.Now()
	for _, name := range names {
		specs, err := experiment.FigureSpecs(name, o)
		if err != nil {
			log.Fatal(err)
		}
		runFigureSpecs(runnerOpts, name, specs, *out, *plot)
	}
	log.Printf("done in %v", time.Since(start).Round(time.Second))
}

// rejectContradictions fails fast on flag combinations where one flag
// would silently override or ignore another.
func rejectContradictions(set map[string]bool) {
	conflict := func(a, b, why string) {
		if set[a] && set[b] {
			log.Fatalf("-%s and -%s are contradictory: %s", a, b, why)
		}
	}
	// -spec fully describes the work; every selection flag contradicts it.
	for _, f := range []string{"figure", "matrix", "run", "verify", "bench", "quick", "seed", "cycles", "size",
		"algo", "algos", "pattern", "patterns", "process", "processes", "model", "rate", "rates", "record", "replay"} {
		conflict("spec", f, "a spec file fixes the whole scenario; edit the file instead")
	}
	conflict("emit-spec", "spec", "emitting a loaded spec is a copy; use the file directly")
	conflict("emit-spec", "verify", "claim verification has no single spec form")
	conflict("emit-spec", "bench", "the bench suite is fixed; run it directly")
	// Replay fixes the injection stream; generative knobs contradict it.
	for _, f := range []string{"pattern", "rate", "process", "model"} {
		conflict("replay", f, "a replayed trace fixes the injection stream")
	}
	conflict("record", "replay", "a run either records or replays, not both")
	// Mode selectors are mutually exclusive.
	conflict("matrix", "run", "pick one mode")
	conflict("matrix", "figure", "pick one mode")
	conflict("matrix", "verify", "pick one mode")
	conflict("run", "figure", "pick one mode")
	conflict("run", "verify", "pick one mode")
	conflict("figure", "verify", "claim verification always reruns every figure")
	conflict("bench", "figure", "the bench suite is fixed")
	conflict("bench", "matrix", "the bench suite is fixed")
	conflict("bench", "run", "the bench suite is fixed")
	conflict("bench", "verify", "the bench suite is fixed")
	// Trace I/O belongs to single runs.
	for _, f := range []string{"record", "replay"} {
		conflict("matrix", f, "trace record/replay applies to single runs; use -run")
		conflict("figure", f, "trace record/replay applies to single runs; use -run")
	}
	// Single-run vs matrix axis flags.
	for _, pair := range [][2]string{
		{"run", "algos"}, {"run", "patterns"}, {"run", "processes"}, {"run", "rates"},
		{"matrix", "algo"}, {"matrix", "pattern"}, {"matrix", "process"}, {"matrix", "rate"},
	} {
		conflict(pair[0], pair[1], "that axis flag belongs to the other mode")
	}
}

// specsFromFlags builds the Spec(s) the current flags describe, for
// -emit-spec.
func specsFromFlags(o experiment.Options, figure string, matrix, runOne bool,
	algos, patterns, processes, rates, model, size string, cycles int,
	algo, pattern, process string, rate float64, record, replay string) []experiment.Spec {
	switch {
	case matrix:
		return []experiment.Spec{matrixSpec(o, algos, patterns, processes, rates, model, size, cycles)}
	case runOne:
		return []experiment.Spec{runSpecFromFlags(o, algo, pattern, process, model, rate, size, cycles, record, replay)}
	default:
		specs, err := experiment.FigureSpecs(figure, o)
		if err != nil {
			log.Fatal(err)
		}
		return specs
	}
}

// newRunner builds the Runner all modes share.
func newRunner(opts []experiment.RunnerOption) *experiment.Runner {
	return experiment.NewRunner(opts...)
}

// runSpec executes one spec, dying on failure.
func runSpec(opts []experiment.RunnerOption, sp experiment.Spec) *experiment.Result {
	res, err := newRunner(opts).Run(context.Background(), sp)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

// runSpecs executes loaded spec files, printing each table.
func runSpecs(opts []experiment.RunnerOption, specs []experiment.Spec, out string, plot bool) {
	start := time.Now()
	for i, sp := range specs {
		res := runSpec(opts, sp)
		if plot && sp.Mode != experiment.ModeStandalone {
			p := res.Panel()
			fmt.Println(p.Plot(72, 24))
		}
		fmt.Println(res.Table().Format())
		name := specSlug(sp, i)
		writeCSV(out, name, res.Table())
		writeJSONL(out, name, res)
	}
	log.Printf("%d spec(s) in %v", len(specs), time.Since(start).Round(time.Second))
}

// runFigureSpecs executes one figure's canned specs with the historical
// per-figure CSV naming: figure8.csv, figure10-<panel>.csv, figure11a.csv.
func runFigureSpecs(opts []experiment.RunnerOption, figure string, specs []experiment.Spec, out string, plot bool) {
	for i, sp := range specs {
		res := runSpec(opts, sp)
		if plot && sp.Mode != experiment.ModeStandalone {
			fmt.Println(res.Panel().Plot(72, 24))
		}
		var tb experiment.Table
		if sp.Mode == experiment.ModeStandalone {
			// Keep the historical Figure 8/9 table layout.
			switch sp.Name {
			case "Figure 8":
				f8 := experiment.Figure8Result{
					LoadFractions:  sp.Standalone.Values,
					SaturationLoad: res.SaturationLoad,
					Curves:         res.Curves(),
				}
				tb = f8.Table()
			default:
				f9 := experiment.Figure9Result{
					Occupancies: sp.Standalone.Values,
					Curves:      res.Curves(),
				}
				tb = f9.Table()
			}
		} else {
			tb = res.Panel().Table()
		}
		fmt.Println(tb.Format())
		name := "figure" + figure
		if len(specs) > 1 {
			name += "-" + specSlug(sp, i)
		}
		writeCSV(out, name, tb)
		writeJSONL(out, name, res)
	}
}

// specSlug derives a filesystem-friendly name for a spec's outputs.
func specSlug(sp experiment.Spec, i int) string {
	s := sp.Name
	if s == "" {
		s = fmt.Sprintf("spec-%d", i+1)
	}
	s = strings.ToLower(s)
	s = strings.NewReplacer(" ", "-", ",", "", "(", "", ")", "", "/", "-").Replace(s)
	return s
}

// printSingleRun prints the one-line summary of a single-scenario spec.
func printSingleRun(res *experiment.Result, size, record, replay string) {
	if len(res.Series) == 0 || len(res.Series[0].Points) == 0 {
		log.Fatal("no result point")
	}
	s := res.Series[0]
	p := s.Points[0]
	what := fmt.Sprintf("%s/%s/%s/%s @ %g", s.Arbiter, s.Pattern, s.Process, modelName(s.Model), p.Rate)
	if replay != "" {
		what = fmt.Sprintf("%s replaying %s", s.Arbiter, replay)
	}
	fmt.Printf("%s on %s: %.4f flits/router/ns @ %.1f ns avg (p50 %.0f / p95 %.0f / p99 %.0f ns), %d packets, %d txns\n",
		what, size, p.Throughput, p.AvgLatencyNS, p.LatencyP50NS, p.LatencyP95NS, p.LatencyP99NS, p.Packets, p.Completed)
	if record != "" {
		log.Printf("recorded trace to %s", record)
	}
}

func modelName(m string) string {
	if m == "" {
		return "coherence"
	}
	return m
}

// runBench runs the benchmark smoke suite: short canned specs timed by
// the Runner, written as BENCH_*.json artifacts through the Result
// encoder — the start of the perf trajectory.
func runBench(opts []experiment.RunnerOption, out string) {
	if out == "" {
		out = "."
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		log.Fatal(err)
	}
	o := experiment.Options{Quick: true, Seed: 1, MaxRatePoints: 3, CyclesOverride: 4000}
	fig8, err := experiment.FigureSpecs("8", o)
	if err != nil {
		log.Fatal(err)
	}
	timing := experiment.NewSpec(
		experiment.WithName("bench 4x4 sweep"),
		experiment.WithTopology(4, 4),
		experiment.WithArbiters("SPAA-rotary", "PIM1"),
		experiment.WithRates(0.01, 0.03),
		experiment.WithCycles(4000),
		experiment.WithSeed(1),
	)
	for _, sp := range append(fig8, timing) {
		start := time.Now()
		res := runSpec(opts, sp)
		path := filepath.Join(out, "BENCH_"+specSlug(sp, 0)+".json")
		if err := res.WriteFile(path); err != nil {
			log.Fatal(err)
		}
		log.Printf("%s: %v -> %s", sp.Name, time.Since(start).Round(time.Millisecond), path)
	}
}

// matrixSpec parses the -matrix flags into a Spec.
func matrixSpec(o experiment.Options, algos, patterns, processes, rates, model, size string, cycles int) experiment.Spec {
	var kinds []core.Kind
	for _, name := range splitList(algos) {
		k, err := core.ParseKind(name)
		if err != nil {
			log.Fatal(err)
		}
		kinds = append(kinds, k)
	}
	var pats []traffic.Pattern
	for _, name := range splitList(patterns) {
		p, err := traffic.ParsePattern(name)
		if err != nil {
			log.Fatal(err)
		}
		pats = append(pats, p)
	}
	procs := splitList(processes)
	var rs []float64
	for _, f := range splitList(rates) {
		r, err := strconv.ParseFloat(f, 64)
		if err != nil || r <= 0 {
			log.Fatalf("invalid rate %q", f)
		}
		rs = append(rs, r)
	}
	if len(kinds) == 0 || len(pats) == 0 || len(procs) == 0 || len(rs) == 0 {
		log.Fatal("matrix needs at least one algorithm, pattern, process, and rate")
	}
	base := baseSetup(o, size, cycles, o.Seed)
	base.Model = model
	sp := experiment.MatrixSpec(base, kinds, pats, procs, rs)
	sp.Name = "Scenario matrix"
	if err := sp.Validate(); err != nil {
		log.Fatal(err)
	}
	return sp
}

// runSpecFromFlags parses the -run flags into a single-scenario Spec.
func runSpecFromFlags(o experiment.Options, algo, pattern, process, model string,
	rate float64, size string, cycles int, record, replay string) experiment.Spec {
	base := baseSetup(o, size, cycles, o.Seed)
	opts := []experiment.SpecOption{
		experiment.WithName("run"),
		experiment.WithTopology(base.Width, base.Height),
		experiment.WithArbiters(algo),
		experiment.WithCycles(base.Cycles),
		experiment.WithSeed(base.Seed),
	}
	if replay != "" {
		opts = append(opts, experiment.WithReplay(replay))
	} else {
		opts = append(opts,
			experiment.WithPatterns(pattern),
			experiment.WithProcesses(process),
			experiment.WithModel(model),
			experiment.WithRates(rate),
		)
		if record != "" {
			opts = append(opts, experiment.WithRecord(record))
		}
	}
	sp := experiment.NewSpec(opts...)
	if err := sp.Validate(); err != nil {
		log.Fatal(err)
	}
	return sp
}

func printLists() {
	fmt.Println("algorithms:", strings.Join(core.KindNames(), ", "))
	fmt.Println("patterns:  ", strings.Join(traffic.PatternNames(), ", "))
	fmt.Println("processes: ", strings.Join(workload.ProcessNames(), ", "))
	fmt.Println("models:    ", strings.Join(workload.ModelNames(), ", "))
	fmt.Println("figures:   ", strings.Join(experiment.FigureSpecNames(), ", "))
}

func writeCSV(dir, name string, tb experiment.Table) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(dir, name+".csv")
	if err := os.WriteFile(path, []byte(tb.CSV()), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", path)
}

// writeJSONL writes the machine-readable Result stream next to the CSV.
func writeJSONL(dir, name string, res *experiment.Result) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(dir, name+".jsonl")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := res.EncodeJSONL(f); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", path)
}

// parseSize parses "WxH" into torus dimensions.
func parseSize(s string) (int, int) {
	parts := strings.SplitN(strings.ToLower(s), "x", 2)
	if len(parts) == 2 {
		w, errW := strconv.Atoi(strings.TrimSpace(parts[0]))
		h, errH := strconv.Atoi(strings.TrimSpace(parts[1]))
		if errW == nil && errH == nil && w >= 2 && h >= 2 {
			return w, h
		}
	}
	log.Fatalf("invalid -size %q (want WxH, e.g. 8x8)", s)
	return 0, 0
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func baseSetup(o experiment.Options, size string, cycles int, seed uint64) experiment.TimingSetup {
	w, h := parseSize(size)
	if cycles <= 0 {
		cycles = o.TimingCycles()
	}
	return experiment.TimingSetup{Width: w, Height: h, Cycles: cycles, Seed: seed}
}

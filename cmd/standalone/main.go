// Command standalone runs the single-router matching model for one
// algorithm and configuration — the building block of Figures 8 and 9.
//
// Usage:
//
//	standalone [-alg SPAA|PIM|PIM1|WFA|MCM|OPF] [-load F] [-occupancy F]
//	           [-cycles N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"

	"alpha21364"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("standalone: ")
	alg := flag.String("alg", "SPAA", "arbitration algorithm (MCM, PIM, PIM1, WFA, SPAA, OPF)")
	load := flag.Float64("load", 1.0, "packet arrival probability per input port per cycle")
	occupancy := flag.Float64("occupancy", 0, "probability an output port is busy each cycle")
	cycles := flag.Int("cycles", 1000, "iterations to average over")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	kind, err := alpha21364.ParseKind(*alg)
	if err != nil {
		log.Fatal(err)
	}
	cfg := alpha21364.DefaultStandaloneConfig(*load)
	cfg.Occupancy = *occupancy
	cfg.Cycles = *cycles
	cfg.Seed = *seed

	res := alpha21364.RunStandalone(kind, cfg)
	fmt.Printf("algorithm:        %s\n", res.Algorithm)
	fmt.Printf("load:             %.3f pkts/port/cycle (occupancy %.2f)\n", *load, *occupancy)
	fmt.Printf("matches/cycle:    %.3f\n", res.MatchesPerCycle)
	fmt.Printf("offered/cycle:    %.3f\n", res.OfferedPerCycle)
	fmt.Printf("dropped/cycle:    %.3f\n", res.DroppedPerCycle)
	fmt.Printf("mean queue (pkt): %.1f\n", res.MeanQueueLen)
}

// Command standalone runs the single-router matching model for one
// algorithm and configuration — the building block of Figures 8 and 9 —
// through the Scenario/Runner API; -json dumps the machine-readable
// Result document.
//
// Usage:
//
//	standalone [-alg SPAA|PIM|PIM1|WFA|MCM|OPF] [-load F] [-occupancy F]
//	           [-cycles N] [-seed N] [-json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"alpha21364"
	"alpha21364/internal/prof"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("standalone: ")
	alg := flag.String("alg", "SPAA", "arbitration algorithm (MCM, PIM, PIM1, WFA, SPAA, OPF)")
	load := flag.Float64("load", 1.0, "packet arrival probability per input port per cycle")
	occupancy := flag.Float64("occupancy", 0, "probability an output port is busy each cycle")
	cycles := flag.Int("cycles", 1000, "iterations to average over")
	seed := flag.Uint64("seed", 1, "simulation seed")
	jsonOut := flag.Bool("json", false, "print the Result document as JSON instead of text")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()
	stopProf, err := prof.Start(*cpuprofile, *memprofile, log.Printf)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()

	spec := alpha21364.NewSpec(
		alpha21364.WithName("standalone"),
		alpha21364.WithArbiters(*alg),
		alpha21364.WithStandaloneSweep(alpha21364.AxisLoad, *load),
		alpha21364.WithCycles(*cycles),
		alpha21364.WithSeed(*seed),
	)
	spec.Standalone.Occupancy = *occupancy

	result, err := alpha21364.NewRunner().Run(context.Background(), spec)
	if err != nil {
		log.Fatal(err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(result); err != nil {
			log.Fatal(err)
		}
		return
	}
	s := result.Series[0]
	res := s.Points[0]
	fmt.Printf("algorithm:        %s\n", s.Arbiter)
	fmt.Printf("load:             %.3f pkts/port/cycle (occupancy %.2f)\n", *load, *occupancy)
	fmt.Printf("matches/cycle:    %.3f\n", res.MatchesPerCycle)
	fmt.Printf("offered/cycle:    %.3f\n", res.OfferedPerCycle)
	fmt.Printf("dropped/cycle:    %.3f\n", res.DroppedPerCycle)
	fmt.Printf("mean queue (pkt): %.1f\n", res.MeanQueueLen)
}

package alpha21364_test

import (
	"fmt"

	"alpha21364"
)

// ExampleNewArbiter runs the paper's Figure 2 scenario through the naive
// oldest-packet-first strawman and the exhaustive matcher: OPF collapses
// to a single match because every input port's oldest packet wants output
// port 3, while MCM matches one packet to every output port.
func ExampleNewArbiter() {
	dests := [8][3]int{
		{3, 2, 1}, {3, 2, 1}, {3, 2, 1}, {3, 2, 1},
		{3, 6, 1}, {3, 2, 0}, {3, 2, 4}, {3, 2, 5},
	}
	build := func() *alpha21364.Matrix {
		m := alpha21364.NewRouterMatrix()
		key := uint64(1)
		for port, row := range dests {
			for age, d := range row {
				if !m.At(2*port, d).Valid {
					m.Set(2*port, d, int64(age), key, 0)
				}
				key++
			}
		}
		return m
	}
	rng := alpha21364.NewRNG(1)
	opf := alpha21364.NewArbiter(alpha21364.OPF, rng)
	mcm := alpha21364.NewArbiter(alpha21364.MCM, rng)
	fmt.Println("OPF:", len(opf.Arbitrate(build())), "match")
	fmt.Println("MCM:", len(mcm.Arbitrate(build())), "matches")
	// Output:
	// OPF: 1 match
	// MCM: 7 matches
}

// ExampleRunStandalone measures SPAA's matching capability in the
// standalone single-router model at full load, as in Figure 8.
func ExampleRunStandalone() {
	cfg := alpha21364.DefaultStandaloneConfig(1.0)
	res := alpha21364.RunStandalone(alpha21364.SPAABase, cfg)
	fmt.Printf("%s saturates between 4 and 5 matches/cycle: %v\n",
		res.Algorithm, res.MatchesPerCycle > 4 && res.MatchesPerCycle < 5)
	// Output:
	// SPAA-base saturates between 4 and 5 matches/cycle: true
}

// ExampleRunTiming simulates a 16-processor 21364 torus at a light load
// and confirms the zero-load latency band the paper calibrates in §4.3
// (about 45 ns for the coherence mix in a 4x4 network).
func ExampleRunTiming() {
	res, err := alpha21364.RunTiming(alpha21364.TimingSetup{
		Width: 4, Height: 4,
		Kind:    alpha21364.SPAABase,
		Pattern: alpha21364.Uniform,
		Rate:    0.002,
		Cycles:  20000,
		Seed:    1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("average latency within the zero-load band: %v\n",
		res.AvgLatencyNS > 40 && res.AvgLatencyNS < 60)
	// Output:
	// average latency within the zero-load band: true
}

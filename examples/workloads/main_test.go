package main

// main_test.go makes `go test ./...` compile and exercise this example:
// the whole pattern × process sweep plus the record/replay demonstration
// runs at reduced fidelity, and the test checks the output carries every
// table row and the replay epilogue.

import (
	"strings"
	"testing"
)

func TestExampleRuns(t *testing.T) {
	var out strings.Builder
	if err := run(&out, 1500); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"pattern",
		"random", "transpose", "tornado", "neighbor", "hotspot",
		"recorded", "replayed the same packet sequence under PIM1",
		"only the arbiter changed",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("example output missing %q:\n%s", want, got)
		}
	}
}

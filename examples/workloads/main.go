// Workloads: composing the pluggable workload suite. A workload is three
// orthogonal choices — a destination pattern (where packets go), an
// arrival process (when demands fire), and a transaction model (what a
// demand injects). This example sweeps one arbiter across the pattern ×
// process grid, then records a bursty-hotspot run to a trace file and
// replays it under a different arbiter: the replay re-injects the
// identical packet sequence, so the latency difference is purely the
// arbiter's doing.
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"alpha21364"
)

func main() {
	if err := run(os.Stdout, 8000); err != nil {
		log.Fatal(err)
	}
}

// run executes the whole example at the given per-simulation cycle
// count, writing the tables to out. The test drives it at reduced
// fidelity; main uses 8000 cycles.
func run(out io.Writer, cycles int) error {
	fmt.Fprintln(out, "4x4 torus, SPAA-rotary: avg latency (ns) per pattern x process")
	fmt.Fprintln(out)

	patterns := []alpha21364.Pattern{
		alpha21364.Uniform, alpha21364.Transpose, alpha21364.Tornado,
		alpha21364.Neighbor, alpha21364.Hotspot,
	}
	processes := alpha21364.ProcessNames()

	fmt.Fprintf(out, "%-16s", "pattern")
	for _, proc := range processes {
		fmt.Fprintf(out, "  %-14s", proc)
	}
	fmt.Fprintln(out)
	for _, pat := range patterns {
		fmt.Fprintf(out, "%-16s", pat)
		for _, proc := range processes {
			res, err := alpha21364.RunTiming(alpha21364.TimingSetup{
				Width: 4, Height: 4, Kind: alpha21364.SPAARotary, Pattern: pat,
				Process: proc, Rate: 0.03, Cycles: cycles, Seed: 1,
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "  %-14.1f", res.AvgLatencyNS)
		}
		fmt.Fprintln(out)
	}

	// Record a bursty hotspot run, then replay the identical packet
	// sequence under a slower arbiter.
	dir, err := os.MkdirTemp("", "workloads")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	tracePath := filepath.Join(dir, "bursty-hotspot.trace")

	setup := alpha21364.TimingSetup{
		Width: 4, Height: 4, Kind: alpha21364.SPAARotary, Pattern: alpha21364.Hotspot,
		Process: "onoff", Rate: 0.03, Cycles: cycles, Seed: 1,
		RecordTo: tracePath,
	}
	recorded, err := alpha21364.RunTiming(setup)
	if err != nil {
		return err
	}
	trace, err := alpha21364.ReadTraceFile(tracePath)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\nrecorded %d injections of a bursty hotspot run (SPAA-rotary: %.1f ns avg)\n",
		len(trace.Events), recorded.AvgLatencyNS)

	replayed, err := alpha21364.RunTiming(alpha21364.TimingSetup{
		Width: 4, Height: 4, Kind: alpha21364.PIM1, Cycles: cycles, Seed: 1,
		ReplayFrom: tracePath,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "replayed the same packet sequence under PIM1:      %.1f ns avg\n",
		replayed.AvgLatencyNS)
	fmt.Fprintln(out, "\nSame packets, same ticks — only the arbiter changed.")
	return nil
}

package main

// main_test.go makes `go test ./...` compile and exercise this example:
// the single run plus the BNF load sweep execute at reduced fidelity, and
// the test checks the report carries the headline metrics and every sweep
// point.

import (
	"strings"
	"testing"
)

func TestExampleRuns(t *testing.T) {
	var out strings.Builder
	if err := run(&out, 2000); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"delivered throughput",
		"average latency",
		"transactions",
		"BNF curve",
		"rate 0.010", "rate 0.080",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("example output missing %q:\n%s", want, got)
		}
	}
}

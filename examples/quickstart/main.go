// Quickstart: simulate a 16-processor Alpha 21364 torus running SPAA (the
// shipping configuration) under the paper's coherence workload, and print
// the network's delivered throughput and average packet latency.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"alpha21364"
)

func main() {
	if err := run(os.Stdout, 20000); err != nil {
		log.Fatal(err)
	}
}

// run executes the example at the given router cycle count, writing the
// report to out. The test drives it at reduced fidelity; main uses 20000
// cycles (the BNF sweep runs each point at half that).
func run(out io.Writer, cycles int) error {
	res, err := alpha21364.RunTiming(alpha21364.TimingSetup{
		Width:   4,
		Height:  4,
		Kind:    alpha21364.SPAABase,
		Pattern: alpha21364.Uniform,
		Rate:    0.03,   // new transactions per node per router cycle
		Cycles:  cycles, // router cycles at 1.2 GHz
		Seed:    1,
	})
	if err != nil {
		return err
	}

	fmt.Fprintln(out, "Alpha 21364 4x4 torus, SPAA arbitration, uniform coherence traffic")
	fmt.Fprintf(out, "  delivered throughput: %.3f flits/router/ns (max 2.4)\n", res.Throughput)
	fmt.Fprintf(out, "  average latency:      %.1f ns per packet\n", res.AvgLatencyNS)
	fmt.Fprintf(out, "  packets delivered:    %d (%.2f hops on average)\n", res.Packets, res.MeanHops)
	fmt.Fprintf(out, "  transactions:         %d completed\n", res.Completed)

	// Sweep the load to trace a BNF curve (latency vs delivered
	// throughput), the metric the paper reports in Figure 10.
	series, err := alpha21364.SweepBNF(alpha21364.TimingSetup{
		Width: 4, Height: 4, Kind: alpha21364.SPAABase,
		Pattern: alpha21364.Uniform, Cycles: cycles / 2, Seed: 1,
	}, []float64{0.01, 0.03, 0.05, 0.08})
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "\nBNF curve (load sweep):")
	for _, p := range series.Points {
		fmt.Fprintf(out, "  rate %.3f -> %.3f flits/router/ns at %.1f ns\n",
			p.OfferedRate, p.Throughput, p.AvgLatencyNS)
	}
	return nil
}

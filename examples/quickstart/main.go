// Quickstart: simulate a 16-processor Alpha 21364 torus running SPAA (the
// shipping configuration) under the paper's coherence workload, and print
// the network's delivered throughput and average packet latency.
package main

import (
	"fmt"
	"log"

	"alpha21364"
)

func main() {
	res, err := alpha21364.RunTiming(alpha21364.TimingSetup{
		Width:   4,
		Height:  4,
		Kind:    alpha21364.SPAABase,
		Pattern: alpha21364.Uniform,
		Rate:    0.03,  // new transactions per node per router cycle
		Cycles:  20000, // router cycles at 1.2 GHz
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Alpha 21364 4x4 torus, SPAA arbitration, uniform coherence traffic")
	fmt.Printf("  delivered throughput: %.3f flits/router/ns (max 2.4)\n", res.Throughput)
	fmt.Printf("  average latency:      %.1f ns per packet\n", res.AvgLatencyNS)
	fmt.Printf("  packets delivered:    %d (%.2f hops on average)\n", res.Packets, res.MeanHops)
	fmt.Printf("  transactions:         %d completed\n", res.Completed)

	// Sweep the load to trace a BNF curve (latency vs delivered
	// throughput), the metric the paper reports in Figure 10.
	series, err := alpha21364.SweepBNF(alpha21364.TimingSetup{
		Width: 4, Height: 4, Kind: alpha21364.SPAABase,
		Pattern: alpha21364.Uniform, Cycles: 10000, Seed: 1,
	}, []float64{0.01, 0.03, 0.05, 0.08})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nBNF curve (load sweep):")
	for _, p := range series.Points {
		fmt.Printf("  rate %.3f -> %.3f flits/router/ns at %.1f ns\n",
			p.OfferedRate, p.Throughput, p.AvgLatencyNS)
	}
}

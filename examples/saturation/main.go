// Saturation: tree saturation and the Rotary Rule. A 64-processor torus is
// pushed past its saturation point (the high in-flight pressure of the
// paper's Figure 11b scaling study); the base algorithms' delivered
// throughput collapses as trees of blocked packets clog the buffers, while
// the Rotary Rule variants — which let packets already in the network exit
// the "rotary" before new local traffic enters — hold their peak.
package main

import (
	"fmt"
	"log"

	"alpha21364"
)

func main() {
	fmt.Println("8x8 torus, uniform traffic, 64 outstanding misses per processor")
	fmt.Println("(delivered flits/router/ns as offered load rises)")
	fmt.Println()

	rates := []float64{0.02, 0.04, 0.08, 0.13}
	kinds := []alpha21364.Kind{
		alpha21364.SPAABase, alpha21364.SPAARotary,
		alpha21364.WFABase, alpha21364.WFARotary,
	}

	fmt.Printf("%-12s", "rate")
	for _, k := range kinds {
		fmt.Printf("  %-12s", k)
	}
	fmt.Println()
	for _, rate := range rates {
		fmt.Printf("%-12.3f", rate)
		for _, kind := range kinds {
			res, err := alpha21364.RunTiming(alpha21364.TimingSetup{
				Width: 8, Height: 8, Kind: kind, Pattern: alpha21364.Uniform,
				Rate: rate, MaxOutstanding: 64, Cycles: 12000, Seed: 1,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-12.4f", res.Throughput)
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("Reading the table: beyond the saturation knee (~0.04), the -base")
	fmt.Println("columns fall while the -rotary columns hold. The 21364 ships the")
	fmt.Println("Rotary Rule as a boot-time option for exactly this regime.")
}

// Saturation: tree saturation and the Rotary Rule. A 64-processor torus is
// pushed past its saturation point (the high in-flight pressure of the
// paper's Figure 11b scaling study); the base algorithms' delivered
// throughput collapses as trees of blocked packets clog the buffers, while
// the Rotary Rule variants — which let packets already in the network exit
// the "rotary" before new local traffic enters — hold their peak.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"alpha21364"
)

func main() {
	if err := run(os.Stdout, 12000); err != nil {
		log.Fatal(err)
	}
}

// run executes the whole rate x algorithm table at the given router cycle
// count per point, writing it to out. The test drives it at reduced
// fidelity; main uses 12000 cycles.
func run(out io.Writer, cycles int) error {
	fmt.Fprintln(out, "8x8 torus, uniform traffic, 64 outstanding misses per processor")
	fmt.Fprintln(out, "(delivered flits/router/ns as offered load rises)")
	fmt.Fprintln(out)

	rates := []float64{0.02, 0.04, 0.08, 0.13}
	kinds := []alpha21364.Kind{
		alpha21364.SPAABase, alpha21364.SPAARotary,
		alpha21364.WFABase, alpha21364.WFARotary,
	}

	fmt.Fprintf(out, "%-12s", "rate")
	for _, k := range kinds {
		fmt.Fprintf(out, "  %-12s", k)
	}
	fmt.Fprintln(out)
	for _, rate := range rates {
		fmt.Fprintf(out, "%-12.3f", rate)
		for _, kind := range kinds {
			res, err := alpha21364.RunTiming(alpha21364.TimingSetup{
				Width: 8, Height: 8, Kind: kind, Pattern: alpha21364.Uniform,
				Rate: rate, MaxOutstanding: 64, Cycles: cycles, Seed: 1,
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "  %-12.4f", res.Throughput)
		}
		fmt.Fprintln(out)
	}

	fmt.Fprintln(out)
	fmt.Fprintln(out, "Reading the table: beyond the saturation knee (~0.04), the -base")
	fmt.Fprintln(out, "columns fall while the -rotary columns hold. The 21364 ships the")
	fmt.Fprintln(out, "Rotary Rule as a boot-time option for exactly this regime.")
	return nil
}

package main

// main_test.go makes `go test ./...` compile and exercise this example:
// the rate x algorithm saturation table runs at reduced fidelity, and the
// test checks every column header and rate row appears.

import (
	"strings"
	"testing"
)

func TestExampleRuns(t *testing.T) {
	var out strings.Builder
	if err := run(&out, 800); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"8x8 torus",
		"SPAA-base", "SPAA-rotary", "WFA-base", "WFA-rotary",
		"0.020", "0.130",
		"Rotary Rule",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("example output missing %q:\n%s", want, got)
		}
	}
}

package main

// main_test.go makes `go test ./...` compile and exercise this example:
// the Figure 2 scenario plus the standalone saturation comparison run at
// a reduced iteration count, and the test checks both tables appear with
// every algorithm. The Figure 2 outcome itself is pinned: MCM must find
// the full 7-output matching the figure shades while OPF collapses to 1.

import (
	"strings"
	"testing"
)

func TestExampleRuns(t *testing.T) {
	var out strings.Builder
	if err := run(&out, 200); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"Figure 2 scenario",
		"OPF", "SPAA-base", "PIM1", "WFA-base", "MCM",
		"Standalone model at full load",
		"matches/cycle",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("example output missing %q:\n%s", want, got)
		}
	}
	if !strings.Contains(got, "OPF          1") {
		t.Errorf("OPF should collapse to a single match on Figure 2:\n%s", got)
	}
	if !strings.Contains(got, "MCM          7") {
		t.Errorf("MCM should find the figure's 7-output matching:\n%s", got)
	}
}

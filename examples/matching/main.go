// Matching: the paper's Figure 2 example, executed. Eight input ports each
// hold three packets; every port's oldest packet wants output port 3, so
// naive oldest-packet-first (OPF) collapses to a single match, while MCM
// finds the shaded optimal — one packet for every output port. The same
// scenario then runs through SPAA, WFA and PIM1 to show where each lands,
// followed by the steady-state standalone comparison behind Figure 8.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"alpha21364"
)

func main() {
	if err := run(os.Stdout, 1000); err != nil {
		log.Fatal(err)
	}
}

// run executes the example, averaging the standalone comparison over the
// given iteration count, writing both tables to out. The test drives it
// at reduced fidelity; main uses the paper's 1000 iterations.
func run(out io.Writer, cycles int) error {
	// Figure 2's queue contents: columns are destinations, oldest first.
	dests := [8][3]int{
		{3, 2, 1}, {3, 2, 1}, {3, 2, 1}, {3, 2, 1},
		{3, 6, 1}, {3, 2, 0}, {3, 2, 4}, {3, 2, 5},
	}

	fmt.Fprintln(out, "Figure 2 scenario: every input port's oldest packet wants output 3")
	fmt.Fprintf(out, "%-12s %-9s %s\n", "algorithm", "matches", "granted outputs")
	for _, kind := range []alpha21364.Kind{
		alpha21364.OPF, alpha21364.SPAABase, alpha21364.PIM1,
		alpha21364.WFABase, alpha21364.MCM,
	} {
		m := buildFigure2(dests)
		arb := alpha21364.NewArbiter(kind, alpha21364.NewRNG(1))
		grants := arb.Arbitrate(m)
		outs := make([]int, 0, len(grants))
		for _, g := range grants {
			outs = append(outs, g.Col)
		}
		fmt.Fprintf(out, "%-12s %-9d %v\n", arb.Name(), len(grants), outs)
	}

	// The steady-state version: matches/cycle at the MCM saturation load,
	// the right edge of the paper's Figure 8.
	fmt.Fprintln(out, "\nStandalone model at full load (Figure 8's saturation point):")
	cfg := alpha21364.DefaultStandaloneConfig(1.0)
	cfg.Cycles = cycles
	for _, kind := range []alpha21364.Kind{
		alpha21364.MCM, alpha21364.WFABase, alpha21364.PIM,
		alpha21364.PIM1, alpha21364.SPAABase,
	} {
		res := alpha21364.RunStandalone(kind, cfg)
		fmt.Fprintf(out, "  %-10s %.2f matches/cycle\n", res.Algorithm, res.MatchesPerCycle)
	}
	return nil
}

// buildFigure2 loads the figure's queues into a request matrix: one row
// per input port, each cell holding the oldest packet wanting that output.
func buildFigure2(dests [8][3]int) *alpha21364.Matrix {
	m := alpha21364.NewRouterMatrix()
	key := uint64(1)
	for port, row := range dests {
		r := 2 * port // use read port 0 of each input port
		for age, d := range row {
			if !m.At(r, d).Valid {
				m.Set(r, d, int64(age), key, 0)
			}
			key++
		}
	}
	return m
}

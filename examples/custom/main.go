// Custom: plugging a new arbitration algorithm into the library. The
// Arbiter interface is one method over the request matrix, so research
// variants drop in next to the paper's algorithms. Here we build a
// "greedy column" arbiter — each output port greedily takes its oldest
// request in a fixed port order, with no input-side coordination at all —
// and measure its matching capability against the published algorithms on
// identical traffic.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"alpha21364"
)

// greedyColumns grants each column its oldest request, skipping rows
// already claimed by an earlier column. It is even simpler than OPF (no
// input-side packet choice) and shows what the interaction machinery in
// PIM and WFA buys.
type greedyColumns struct{}

func (greedyColumns) Name() string { return "greedy-columns" }

func (greedyColumns) Arbitrate(m *alpha21364.Matrix) []alpha21364.Grant {
	var grants []alpha21364.Grant
	rowUsed := make([]bool, m.Rows)
	for c := 0; c < m.Cols; c++ {
		best := -1
		for r := 0; r < m.Rows; r++ {
			if rowUsed[r] || !m.At(r, c).Valid {
				continue
			}
			if best == -1 || m.At(r, c).Age < m.At(best, c).Age {
				best = r
			}
		}
		if best >= 0 {
			rowUsed[best] = true
			grants = append(grants, alpha21364.Grant{Row: best, Col: c, Cell: m.At(best, c)})
		}
	}
	return grants
}

func main() {
	if err := run(os.Stdout, 2000); err != nil {
		log.Fatal(err)
	}
}

// run compares the arbiters over the given number of random request
// matrices, writing the table to out. The test drives it at a reduced
// trial count; main uses 2000.
func run(out io.Writer, trials int) error {
	rng := alpha21364.NewRNG(42)
	arbiters := []alpha21364.Arbiter{
		greedyColumns{},
		alpha21364.NewArbiter(alpha21364.SPAABase, rng),
		alpha21364.NewArbiter(alpha21364.WFABase, rng),
		alpha21364.NewArbiter(alpha21364.MCM, rng),
	}

	// Identical random request matrices for every arbiter: sparse traffic
	// (12% cell density) so the algorithms' coordination actually matters.
	totals := make([]int, len(arbiters))
	for trial := 0; trial < trials; trial++ {
		m := alpha21364.NewRouterMatrix()
		key := uint64(1)
		mrng := alpha21364.NewRNG(uint64(trial) + 1)
		for r := 0; r < m.Rows; r++ {
			for c := 0; c < m.Cols; c++ {
				if mrng.Bernoulli(0.12) {
					m.Set(r, c, int64(mrng.Intn(100)), key, 0)
					key++
				}
			}
		}
		for i, a := range arbiters {
			totals[i] += len(a.Arbitrate(m))
		}
	}

	fmt.Fprintln(out, "Matching capability on identical sparse request matrices:")
	for i, a := range arbiters {
		fmt.Fprintf(out, "  %-16s %.2f matches/cycle\n", a.Name(), float64(totals[i])/float64(trials))
	}
	fmt.Fprintln(out)
	fmt.Fprintln(out, "greedy-columns coordinates nothing across columns, so it loses")
	fmt.Fprintln(out, "rows to early columns that later columns needed — the arbitration")
	fmt.Fprintln(out, "collision the paper's Figure 2 illustrates.")
	return nil
}

package main

// main_test.go makes `go test ./...` compile and exercise this example:
// the four-arbiter comparison runs over a reduced trial count, and the
// test checks every arbiter appears in the table — including the
// example's own drop-in greedy-columns implementation.

import (
	"strings"
	"testing"
)

func TestExampleRuns(t *testing.T) {
	var out strings.Builder
	if err := run(&out, 200); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"Matching capability",
		"greedy-columns", "SPAA-base", "WFA-base", "MCM",
		"matches/cycle",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("example output missing %q:\n%s", want, got)
		}
	}
}

module alpha21364

go 1.24

# Developer entry points. Everything here is a thin wrapper over the Go
# toolchain and cmd/sweep; CI runs the same commands.

GO ?= go

.PHONY: build test race bench bench-arbiters bench-check cover cover-check fmt vet figures

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the suite under the race detector, short mode (CI's default).
race:
	$(GO) test -race -short ./...

# race-pools points the race detector at the pooled/arena hot paths
# specifically: the tick-wheel scheduler, the packet arena, the router
# slab/rings, and the workload injection queues — plus the oracle and
# telemetry hook paths (invariant checker, obs counters/flight rings,
# replicated/checked/instrumented Runner fan-outs, and the daemon's
# shared metrics under concurrent scrapes), the fleet dispatch paths
# (heartbeats racing the dispatcher's liveness flips, the daemon's shard
# semaphore and drain flag under concurrent requests), and the bitplane
# arbitration kernels (the parallel differential suite drives every
# word-parallel kernel against its scalar reference from concurrent
# subtests, racing the shared mask/scratch code paths), and the spatial
# sharding assembly (per-band engine workers spinning on the wavefront's
# publish flags, the PostBuffer flush, per-shard flight slots, and the
# checker's per-router scratch under concurrent edge ticks).
race-pools:
	$(GO) test -race -count=1 \
		-run 'Wheel|Arena|Ring|Alloc|Slab|Engine|Generator|Shard' \
		./internal/sim ./internal/packet ./internal/vc ./internal/router ./internal/workload
	$(GO) test -race -count=1 -run 'Differential|Matrix|Bitplane' ./internal/core
	$(GO) test -race -count=1 ./internal/check ./internal/obs ./internal/topology
	$(GO) test -race -count=1 -run 'Replicated|CheckedRunMatches|Metrics|TorusSharded' ./internal/experiment
	$(GO) test -race -count=1 -run 'Metrics|Flight' ./internal/router
	$(GO) test -race -count=1 ./internal/fleet
	$(GO) test -race -count=1 -run 'Metrics|Pprof|Shard|Drain|Healthz|BodyLimit' ./cmd/sweepd

# cover writes the atomic-mode coverage profile for the whole module.
cover:
	$(GO) test -covermode=atomic -coverprofile=cover.out ./...

# cover-check fails when any package's statement coverage drops below
# its checked-in floor (COVERAGE.json). Regenerate floors after
# intentionally raising coverage with:
#   go run ./cmd/covercheck -profile cover.out -write
cover-check: cover
	$(GO) run ./cmd/covercheck -profile cover.out -floors COVERAGE.json

# bench runs the benchmark suite and writes BENCH_10.json into bench-out/.
bench:
	$(GO) run ./cmd/sweep -bench -out bench-out

# bench-arbiters runs the per-kernel Arbitrate microbenchmarks (bitplane
# kernels and their retained scalar references side by side).
bench-arbiters:
	$(GO) test ./internal/core -run '^$$' -bench 'Arbitrate' -benchmem

# bench-check compares a fresh run against the committed baseline and
# fails on >15% calibration-normalized regression in ns/simulated-cycle
# (or allocations). This is the CI perf gate.
bench-check:
	$(GO) run ./cmd/sweep -bench -out bench-out -bench-baseline BENCH_10.json

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...

figures:
	$(GO) run ./cmd/sweep -quick -figure all -out figures-out

# Developer entry points. Everything here is a thin wrapper over the Go
# toolchain and cmd/sweep; CI runs the same commands.

GO ?= go

.PHONY: build test race bench bench-check fmt vet figures

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the suite under the race detector, short mode (CI's default).
race:
	$(GO) test -race -short ./...

# race-pools points the race detector at the pooled/arena hot paths
# specifically: the tick-wheel scheduler, the packet arena, the router
# slab/rings, and the workload injection queues.
race-pools:
	$(GO) test -race -count=1 \
		-run 'Wheel|Arena|Ring|Alloc|Slab|Engine|Generator' \
		./internal/sim ./internal/packet ./internal/vc ./internal/router ./internal/workload

# bench runs the benchmark suite and writes BENCH_4.json into bench-out/.
bench:
	$(GO) run ./cmd/sweep -bench -out bench-out

# bench-check compares a fresh run against the committed baseline and
# fails on >15% calibration-normalized regression in ns/simulated-cycle
# (or allocations). This is the CI perf gate.
bench-check:
	$(GO) run ./cmd/sweep -bench -out bench-out -bench-baseline BENCH_4.json

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...

figures:
	$(GO) run ./cmd/sweep -quick -figure all -out figures-out

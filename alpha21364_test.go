package alpha21364

import (
	"testing"
)

func TestFacadeKindsParse(t *testing.T) {
	for _, k := range []Kind{MCM, PIM, PIM1, WFABase, WFARotary, SPAABase, SPAARotary, OPF} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
}

func TestFacadePatternsParse(t *testing.T) {
	for _, p := range []Pattern{Uniform, BitReversal, PerfectShuffle} {
		got, err := ParsePattern(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePattern(%q) = %v, %v", p.String(), got, err)
		}
	}
}

func TestFacadeStandaloneRun(t *testing.T) {
	cfg := DefaultStandaloneConfig(0.5)
	cfg.Cycles = 200
	res := RunStandalone(SPAABase, cfg)
	if res.MatchesPerCycle <= 0 {
		t.Fatalf("no matches: %+v", res)
	}
}

func TestFacadeMatrixAndArbiter(t *testing.T) {
	m := NewRouterMatrix()
	m.Set(0, 3, 1, 42, 0)
	m.Set(4, 3, 2, 43, 0)
	grants := NewArbiter(SPAABase, NewRNG(1)).Arbitrate(m)
	if len(grants) != 1 || grants[0].Col != 3 {
		t.Fatalf("grants = %+v", grants)
	}
	// Oldest wins: key 42 has the smaller age.
	if grants[0].Cell.Key != 42 {
		t.Errorf("granted key %d, want the older 42", grants[0].Cell.Key)
	}
}

func TestFacadeTimingRun(t *testing.T) {
	res, err := RunTiming(TimingSetup{
		Width: 4, Height: 4, Kind: SPAARotary, Pattern: Uniform,
		Rate: 0.01, Cycles: 4000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets == 0 {
		t.Fatal("no packets delivered")
	}
}

func TestFacadeSweep(t *testing.T) {
	series, err := SweepBNF(TimingSetup{
		Width: 4, Height: 4, Kind: PIM1, Pattern: Uniform, Cycles: 2500, Seed: 1,
	}, []float64{0.01, 0.03})
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Points) != 2 || series.Points[1].Throughput <= series.Points[0].Throughput {
		t.Fatalf("sweep points wrong: %+v", series.Points)
	}
}

func TestFacadeMCMSaturationLoad(t *testing.T) {
	cfg := DefaultStandaloneConfig(0)
	cfg.Cycles = 200
	if sat := MCMSaturationLoad(cfg); sat <= 0 || sat > 1 {
		t.Fatalf("saturation load = %v", sat)
	}
}

// Package alpha21364 reproduces "A Comparative Study of Arbitration
// Algorithms for the Alpha 21364 Pipelined Router" (Mukherjee, Silla,
// Bannon, Emer, Lang, Webb — ASPLOS 2002).
//
// It provides, as a library:
//
//   - the Scenario/Runner API: a Spec is a declarative, versioned,
//     JSON-serializable description of one simulation or a whole
//     sweep/matrix (NewSpec and the With* options, ParseSpec,
//     FigureSpecs); a Runner executes Specs under a context with bounded
//     workers and a streaming event channel (NewRunner, Runner.Run,
//     Runner.Stream); a Result is the stable machine-readable outcome
//     with a JSONL encoder (Result.EncodeJSONL, DecodeResultJSONL);
//   - the sweep service: a Coordinator decomposes sweeps into shard-Specs
//     (PlanShards, MergeShardResults), caches completed points in a
//     content-addressed store (SpecHash, OpenResultCache), and resumes
//     interrupted runs byte-identically (NewCoordinator, WithCache);
//     cmd/sweepd serves the same contract over stdin/HTTP;
//   - the five arbitration algorithms the paper compares — SPAA (the
//     21364's Simple Pipelined Arbitration Algorithm), PIM and PIM1, the
//     wrapped Wave-Front Arbiter, and MCM — plus the OPF strawman and the
//     Rotary Rule prioritization (NewArbiter, the Arbiter interface);
//   - the standalone single-router matching model of Figures 8-9
//     (RunStandalone, MCMSaturationLoad);
//   - the cycle-accurate timing model of the 21364 router and its 2D-torus
//     network with the paper's synthetic coherence workloads (RunTiming,
//     RunTimingCtx);
//   - a pluggable workload suite decomposing traffic into spatial
//     patterns × arrival processes × transaction models, with trace
//     record/replay for reproducible cross-algorithm comparisons
//     (WorkloadPattern, WorkloadProcess, WorkloadModel, Trace);
//   - canned figure Specs and deprecated per-figure runners
//     (Figure8 ... Figure11c) used by the cmd/sweep tool and the
//     repository's benchmarks.
//
// The architecture documentation lives in DESIGN.md; measured-vs-paper
// results for every figure live in EXPERIMENTS.md.
package alpha21364

import (
	"context"
	"io"

	"alpha21364/internal/cache"
	"alpha21364/internal/core"
	"alpha21364/internal/experiment"
	"alpha21364/internal/obs"
	"alpha21364/internal/packet"
	"alpha21364/internal/sim"
	"alpha21364/internal/standalone"
	"alpha21364/internal/stats"
	"alpha21364/internal/topology"
	"alpha21364/internal/traffic"
	"alpha21364/internal/workload"
)

// Arbitration algorithm kinds (see core.Kind).
type Kind = core.Kind

// Algorithm kinds compared by the paper.
const (
	MCM        = core.KindMCM
	PIM        = core.KindPIM
	PIM1       = core.KindPIM1
	WFABase    = core.KindWFABase
	WFARotary  = core.KindWFARotary
	SPAABase   = core.KindSPAABase
	SPAARotary = core.KindSPAARotary
	OPF        = core.KindOPF
)

// Arbiter is an arbitration algorithm over the router's connection matrix.
type Arbiter = core.Arbiter

// Matrix is the 16x7 request matrix an Arbiter matches over.
type Matrix = core.Matrix

// Grant is one (read port, output port) match.
type Grant = core.Grant

// RNG is the deterministic random number generator used throughout.
type RNG = sim.RNG

// NewRNG returns a seeded deterministic generator.
func NewRNG(seed uint64) *RNG { return sim.NewRNG(seed) }

// NewArbiter constructs an arbitration algorithm. The RNG feeds PIM's
// random grant/accept steps; deterministic algorithms ignore it.
func NewArbiter(k Kind, rng *RNG) Arbiter { return core.New(k, rng) }

// NewRouterMatrix returns an empty request matrix shaped like the 21364:
// 16 read-port rows (rows 0-7 fed by network input ports) and 7 output
// columns.
func NewRouterMatrix() *Matrix { return core.NewRouterMatrix() }

// ParseKind resolves an algorithm name such as "SPAA-rotary".
func ParseKind(name string) (Kind, error) { return core.ParseKind(name) }

// Traffic patterns of the synthetic workloads.
type Pattern = traffic.Pattern

// Destination patterns: the paper's three (§4.2) plus the standard
// transpose, tornado, nearest-neighbor, and hotspot suites.
const (
	Uniform        = traffic.Uniform
	BitReversal    = traffic.BitReversal
	PerfectShuffle = traffic.PerfectShuffle
	Transpose      = traffic.Transpose
	Tornado        = traffic.Tornado
	Neighbor       = traffic.Neighbor
	Hotspot        = traffic.Hotspot
)

// ParsePattern resolves a pattern name such as "bit-reversal"
// (case-insensitive).
func ParsePattern(name string) (Pattern, error) { return traffic.ParsePattern(name) }

// PatternNames lists every destination-pattern name.
func PatternNames() []string { return traffic.PatternNames() }

// Torus is the 2D-torus topology (node ids, coordinates, permutations).
type Torus = topology.Torus

// Node identifies a processor/router in the torus.
type Node = topology.Node

// NewTorus returns a W x H torus.
func NewTorus(w, h int) Torus { return topology.NewTorus(w, h) }

// WorkloadPattern draws request destinations — the spatial axis of a
// workload. Build one with NewWorkloadPattern or the workload suite's
// constructors re-exported below.
type WorkloadPattern = workload.Pattern

// WorkloadProcess is the temporal arrival law of a workload.
type WorkloadProcess = workload.Process

// WorkloadModel defines what a transaction is.
type WorkloadModel = workload.Model

// NewWorkloadPattern resolves a destination pattern by name on a torus.
func NewWorkloadPattern(name string, t Torus) (WorkloadPattern, error) {
	return workload.NewPattern(name, t)
}

// NewWorkloadProcess resolves an arrival process ("bernoulli", "onoff",
// "deterministic") at a mean per-node per-cycle rate.
func NewWorkloadProcess(name string, rate float64) (WorkloadProcess, error) {
	return workload.NewProcess(name, rate)
}

// NewHotspotPattern builds a weighted hotspot pattern: fraction of all
// requests go to the targets (drawn by weight; nil weights = equal), the
// rest are uniform.
func NewHotspotPattern(t Torus, targets []Node, weights []float64, fraction float64) (WorkloadPattern, error) {
	return workload.NewHotspot(t, targets, weights, fraction)
}

// ProcessNames lists every arrival-process name.
func ProcessNames() []string { return workload.ProcessNames() }

// ModelNames lists every transaction-model name.
func ModelNames() []string { return workload.ModelNames() }

// Trace is a recorded injection stream: replaying it re-injects the
// identical packet sequence under any arbiter (TimingSetup.RecordTo /
// TimingSetup.ReplayFrom).
type Trace = workload.Trace

// TraceEvent is one packet creation in a Trace.
type TraceEvent = workload.Event

// ReadTraceFile loads a recorded trace.
func ReadTraceFile(path string) (*Trace, error) { return workload.ReadTraceFile(path) }

// StandaloneConfig parameterizes the single-router matching model.
type StandaloneConfig = standalone.Config

// StandaloneResult reports a standalone run.
type StandaloneResult = standalone.Result

// DefaultStandaloneConfig returns the paper's standalone parameters at the
// given per-input-port load.
func DefaultStandaloneConfig(load float64) StandaloneConfig {
	return standalone.DefaultConfig(load)
}

// RunStandalone measures one algorithm's matches per cycle in the
// standalone model (Figures 8-9).
func RunStandalone(k Kind, cfg StandaloneConfig) StandaloneResult {
	return standalone.Run(k, cfg)
}

// RunStandaloneArbiter is RunStandalone for a caller-constructed arbiter —
// custom PIM/iSLIP iteration counts or user algorithms implementing
// Arbiter.
func RunStandaloneArbiter(arb Arbiter, cfg StandaloneConfig) StandaloneResult {
	return standalone.RunArbiter(arb, cfg)
}

// NewISLIP returns McKeown's iSLIP scheduler with the given iteration
// count — the hardware-implementable PIM derivative the paper cites in
// §3.1. Run it through RunStandaloneArbiter.
func NewISLIP(iterations int) Arbiter { return core.NewISLIP(iterations) }

// NewPIMIter returns PIM with a custom iteration count (the paper uses 1
// and log2 N = 4).
func NewPIMIter(iterations int, rng *RNG) Arbiter { return core.NewPIM(iterations, rng) }

// NewWFAPlain returns the original non-wrapped, fixed-priority Wave-Front
// Arbiter, for fairness comparisons against the wrapped WFA the paper
// models.
func NewWFAPlain() Arbiter { return core.NewWFAPlain() }

// MCMSaturationLoad locates the load at which MCM's match rate saturates,
// the unit of Figure 8's horizontal axis.
func MCMSaturationLoad(cfg StandaloneConfig) float64 {
	return standalone.MCMSaturationLoad(cfg)
}

// Spec is a declarative, versioned, JSON-serializable description of one
// simulation or a whole sweep/matrix; build it with NewSpec and the
// With* options, or load canned paper figures with FigureSpecs.
type Spec = experiment.Spec

// SpecOption configures a Spec under construction; see NewSpec.
type SpecOption = experiment.SpecOption

// TopologySpec, WorkloadSpec, TimingSpec, and StandaloneSpec are the
// sections of a Spec.
type (
	TopologySpec   = experiment.TopologySpec
	WorkloadSpec   = experiment.WorkloadSpec
	TimingSpec     = experiment.TimingSpec
	StandaloneSpec = experiment.StandaloneSpec
)

// SpecVersion is the Spec schema version this build reads and writes.
const SpecVersion = experiment.SpecVersion

// Spec modes and standalone sweep axes.
const (
	ModeTiming       = experiment.ModeTiming
	ModeStandalone   = experiment.ModeStandalone
	AxisLoad         = experiment.AxisLoad
	AxisLoadFraction = experiment.AxisLoadFraction
	AxisOccupancy    = experiment.AxisOccupancy
)

// NewSpec builds a Spec from functional options.
func NewSpec(opts ...SpecOption) Spec { return experiment.NewSpec(opts...) }

// Spec construction options; see the experiment package for details.
var (
	WithName            = experiment.WithName
	WithTopology        = experiment.WithTopology
	WithArbiters        = experiment.WithArbiters
	WithPatterns        = experiment.WithPatterns
	WithProcesses       = experiment.WithProcesses
	WithModel           = experiment.WithModel
	WithRates           = experiment.WithRates
	WithMaxOutstanding  = experiment.WithMaxOutstanding
	WithRecord          = experiment.WithRecord
	WithReplay          = experiment.WithReplay
	WithCycles          = experiment.WithCycles
	WithSeed            = experiment.WithSeed
	WithWarmupFraction  = experiment.WithWarmupFraction
	WithScaledPipeline  = experiment.WithScaledPipeline
	WithEpochCycles     = experiment.WithEpochCycles
	WithStandaloneSweep = experiment.WithStandaloneSweep
	WithReplications    = experiment.WithReplications
	WithConfidence      = experiment.WithConfidence
	WithCheck           = experiment.WithCheck
	WithMetrics         = experiment.WithMetrics
)

// Telemetry types: a metrics-enabled Spec (WithMetrics) attaches one
// MetricsSnapshot — router occupancy, stalls, arbitration counters,
// link utilization — to every ResultPoint; MetricsSidecarOf collects
// them into the standalone document `sweep -metrics` writes, and
// StripVolatile is the canonical normalization for byte-comparing two
// runs of the same Spec.
type (
	MetricsSnapshot = obs.Snapshot
	MetricsSidecar  = experiment.MetricsSidecar
	MetricsPoint    = experiment.MetricsPoint
)

// StripVolatile zeroes a Result's wall-clock fields so repeated runs
// compare byte-identical.
func StripVolatile(r *Result) { experiment.StripVolatile(r) }

// MetricsSidecarOf collects a Result's telemetry snapshots, or nil when
// the run was not metrics-enabled.
func MetricsSidecarOf(r *Result) *MetricsSidecar { return experiment.MetricsSidecarOf(r) }

// MetricStats and ReplicationStats are the per-point multi-seed
// statistics a replicated Spec (WithReplications) attaches to every
// ResultPoint: mean, sample stddev, and a Student's t confidence
// interval per metric.
type (
	MetricStats      = experiment.MetricStats
	ReplicationStats = experiment.ReplicationStats
)

// ParseSpec parses and validates one Spec from strict JSON (unknown
// fields and versions are rejected); ParseSpecs also accepts an array.
func ParseSpec(data []byte) (Spec, error)      { return experiment.ParseSpec(data) }
func ParseSpecs(data []byte) ([]Spec, error)   { return experiment.ParseSpecs(data) }
func ReadSpecFile(path string) ([]Spec, error) { return experiment.ReadSpecFile(path) }

// WriteSpecFile saves Specs as JSON (an object for one, an array for
// several); EncodeSpec renders the canonical serialized form.
func WriteSpecFile(path string, specs ...Spec) error { return experiment.WriteSpecFile(path, specs...) }
func EncodeSpec(s Spec) ([]byte, error)              { return experiment.EncodeSpec(s) }

// FigureSpecs returns the canned Specs reproducing a paper figure ("8",
// "9", "10", "10s", "11a", "11b", "11c", or "all"), one Spec per panel.
func FigureSpecs(name string, o Options) ([]Spec, error) { return experiment.FigureSpecs(name, o) }

// Runner executes Specs under a context with bounded workers and a
// streaming event channel; construct with NewRunner.
type Runner = experiment.Runner

// RunnerOption configures a Runner; see WithWorkers and WithEventSink.
type RunnerOption = experiment.RunnerOption

// Event is one element of a Runner's progress stream.
type Event = experiment.Event

// EventType discriminates Runner events.
type EventType = experiment.EventType

// Runner event types.
const (
	EventRunStart   = experiment.EventRunStart
	EventPointDone  = experiment.EventPointDone
	EventSeriesDone = experiment.EventSeriesDone
	EventRunDone    = experiment.EventRunDone
)

// NewRunner returns a Runner; WithWorkers bounds its concurrency and
// WithEventSink observes its event stream.
func NewRunner(opts ...RunnerOption) *Runner { return experiment.NewRunner(opts...) }

var (
	WithWorkers   = experiment.WithWorkers
	WithEventSink = experiment.WithEventSink
)

// Coordinator is the sweep service: it decomposes a Spec's grid into
// shard-Specs, serves cells already present in a content-addressed
// result cache without simulating, fans the missing shards across a
// worker pool, persists completed points as it goes (so a killed run
// resumes by simulating only what is missing), and merges everything
// into the exact byte stream the monolithic Runner produces.
type Coordinator = experiment.Coordinator

// CoordinatorOption configures a Coordinator; see WithCache, WithShards,
// WithCoordinatorWorkers, and WithCoordinatorEventSink.
type CoordinatorOption = experiment.CoordinatorOption

// CoordinatorStats summarizes one Coordinator.Run: grid size, cells
// served from cache, cells simulated, and shards planned.
type CoordinatorStats = experiment.CoordinatorStats

// NewCoordinator returns a Coordinator with one worker per CPU, no
// cache, and one shard per point.
func NewCoordinator(opts ...CoordinatorOption) *Coordinator {
	return experiment.NewCoordinator(opts...)
}

var (
	WithCache                = experiment.WithCache
	WithShards               = experiment.WithShards
	WithCoordinatorWorkers   = experiment.WithCoordinatorWorkers
	WithCoordinatorEventSink = experiment.WithCoordinatorEventSink
)

// ResultCache is a filesystem store of completed result points keyed by
// SpecHash, with atomic per-point writes; open one with OpenResultCache
// and attach it to a Coordinator with WithCache.
type ResultCache = cache.Store

// OpenResultCache opens (creating if needed) a result cache directory.
func OpenResultCache(dir string) (*ResultCache, error) { return cache.Open(dir) }

// SpecHash returns the content address of a Spec's semantic fields: the
// lowercase-hex sha256 of its canonical JSON. Execution knobs (Name,
// Check, Workload.RecordTo) do not participate, so two specs that would
// simulate the same numbers share one cache key.
func SpecHash(s Spec) (string, error) { return experiment.SpecHash(s) }

// Shard is one independently runnable slice of a sweep: a self-contained
// Spec plus the original-grid cells its result points map back to.
type Shard = experiment.Shard

// ShardCell addresses one (series, point) cell of a Spec's grid.
type ShardCell = experiment.ShardCell

// PlanShards decomposes a Spec's grid into at most n shard-Specs (0
// means one per point), deterministically and covering every cell
// exactly once; MergeShardResults reassembles the shards' Results into
// the Result the monolithic Runner would have produced.
func PlanShards(spec Spec, n int) ([]Shard, error) { return experiment.PlanShards(spec, n) }

// MergeShardResults merges shard Results back into grid order; results
// must be index-aligned with shards (nil entries leave their cells
// missing and mark the merged Result partial).
func MergeShardResults(spec Spec, shards []Shard, results []*Result) (*Result, error) {
	return experiment.MergeShardResults(spec, shards, results)
}

// Result is the stable machine-readable outcome of running a Spec, with
// a JSONL encoder (EncodeJSONL) and document form (WriteFile).
type Result = experiment.Result

// ResultSeries and ResultPoint are the rows of a Result.
type (
	ResultSeries = experiment.ResultSeries
	ResultPoint  = experiment.ResultPoint
)

// ResultVersion is the Result schema version this build reads and writes.
const ResultVersion = experiment.ResultVersion

// DecodeResultJSONL reconstructs a Result from its JSONL stream;
// ReadResultFile loads the document form.
func DecodeResultJSONL(r io.Reader) (*Result, error) { return experiment.DecodeResultJSONL(r) }
func ReadResultFile(path string) (*Result, error)    { return experiment.ReadResultFile(path) }

// BenchReport is the machine-readable benchmark report (BENCH_*.json):
// Spec-driven workloads measured through the ordinary Runner, reporting
// points/sec, ns/simulated-cycle, and allocs/op, with a calibration
// constant for cross-machine comparison (BenchReport.Compare).
type BenchReport = experiment.BenchReport

// RunBench executes the fixed benchmark suite serially and returns its
// report; ReadBenchFile loads a saved one.
func RunBench(ctx context.Context) (*BenchReport, error) { return experiment.RunBench(ctx) }
func ReadBenchFile(path string) (*BenchReport, error)    { return experiment.ReadBenchFile(path) }

// PacketArena pools packets with generation-checked handles; simulation
// hot paths draw packets from an arena and release them at delivery.
type PacketArena = packet.Arena

// NewPacketArena returns an empty arena.
func NewPacketArena() *PacketArena { return packet.NewArena() }

// TimingSetup describes one timing-model simulation.
//
// Deprecated: describe simulations as Specs (NewSpec) and run them with
// a Runner; TimingSetup remains for the RunTiming adapter.
type TimingSetup = experiment.TimingSetup

// TimingResult is a BNF point plus diagnostics (AvgLatencyP99 is a
// deprecated alias of LatencyP99NS).
type TimingResult = experiment.TimingResult

// Point is one latency/throughput measurement.
type Point = stats.Point

// Series is a load-sweep BNF curve.
type Series = stats.Series

// NoWarmup, assigned to TimingSetup.WarmupFraction, disables the warmup
// exclusion so statistics cover the entire run (0 keeps the 0.2 default).
const NoWarmup = experiment.NoWarmup

// RunTiming executes one timing simulation; RunTimingCtx is the same
// under a context (cancellation stops the run promptly).
func RunTiming(s TimingSetup) (TimingResult, error) { return experiment.RunTiming(s) }

// RunTimingCtx executes one timing simulation under a context.
func RunTimingCtx(ctx context.Context, s TimingSetup) (TimingResult, error) {
	return experiment.RunTimingCtx(ctx, s)
}

// SweepBNF sweeps injection rates for one algorithm, producing a BNF
// curve. The rates are simulated concurrently (one worker per CPU) with
// byte-identical results to a serial run; use SweepBNFOpts to bound or
// observe the parallelism.
//
// Deprecated: build a Spec with WithRates and run it with a Runner; the
// Result carries the same curve plus percentiles and diagnostics.
func SweepBNF(s TimingSetup, rates []float64) (Series, error) {
	return experiment.Sweep(s, rates)
}

// SweepBNFOpts is SweepBNF with explicit runner options: Options.Workers
// bounds the concurrency (1 = serial) and Options.Progress, when non-nil,
// observes each finished simulation.
//
// Deprecated: use NewRunner(WithWorkers(n), WithEventSink(fn)); see
// SweepBNF.
func SweepBNFOpts(o Options, s TimingSetup, rates []float64) (Series, error) {
	return experiment.SweepOpts(o, s, rates)
}

// ProgressFunc observes sweep progress; see Options.Progress.
//
// Deprecated: Runner events (WithEventSink, Runner.Stream) carry the
// same done/total/label plus the finished point itself.
type ProgressFunc = experiment.ProgressFunc

// Options tunes the per-figure experiment runners.
type Options = experiment.Options

// Panel is one BNF chart (several algorithms on one axis).
type Panel = experiment.Panel

// Table is a formatted result grid.
type Table = experiment.Table

// Scenario names one cell of a scenario matrix.
type Scenario = experiment.Scenario

// ScenarioResult pairs a scenario with its timing result.
type ScenarioResult = experiment.ScenarioResult

// ScenarioMatrix sweeps algorithms × patterns × processes × rates on the
// base setup through the parallel runner; results are byte-identical to
// a serial run.
//
// Deprecated: the cross product is Spec expansion now — use MatrixSpec
// (or NewSpec with multi-valued WithPatterns/WithProcesses) and run it
// with a Runner.
func ScenarioMatrix(o Options, base TimingSetup, kinds []Kind,
	patterns []Pattern, processes []string, rates []float64) ([]ScenarioResult, error) {
	return experiment.ScenarioMatrix(o, base, kinds, patterns, processes, rates)
}

// MatrixSpec lifts typed matrix axes into a declarative Spec.
func MatrixSpec(base TimingSetup, kinds []Kind, patterns []Pattern,
	processes []string, rates []float64) Spec {
	return experiment.MatrixSpec(base, kinds, patterns, processes, rates)
}

// Figure runners reproduce the paper's evaluation; see cmd/sweep.
var (
	Figure8            = experiment.Figure8
	Figure9            = experiment.Figure9
	Figure10           = experiment.Figure10
	Figure10Saturation = experiment.Figure10Saturation
	Figure11a          = experiment.Figure11a
	Figure11b          = experiment.Figure11b
	Figure11c          = experiment.Figure11c
)

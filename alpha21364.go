// Package alpha21364 reproduces "A Comparative Study of Arbitration
// Algorithms for the Alpha 21364 Pipelined Router" (Mukherjee, Silla,
// Bannon, Emer, Lang, Webb — ASPLOS 2002).
//
// It provides, as a library:
//
//   - the five arbitration algorithms the paper compares — SPAA (the
//     21364's Simple Pipelined Arbitration Algorithm), PIM and PIM1, the
//     wrapped Wave-Front Arbiter, and MCM — plus the OPF strawman and the
//     Rotary Rule prioritization (NewArbiter, the Arbiter interface);
//   - the standalone single-router matching model of Figures 8-9
//     (RunStandalone, MCMSaturationLoad);
//   - the cycle-accurate timing model of the 21364 router and its 2D-torus
//     network with the paper's synthetic coherence workloads (RunTiming,
//     SweepBNF);
//   - per-figure experiment runners (Figure8 ... Figure11c) used by the
//     cmd/sweep tool and the repository's benchmarks.
//
// The architecture documentation lives in DESIGN.md; measured-vs-paper
// results for every figure live in EXPERIMENTS.md.
package alpha21364

import (
	"alpha21364/internal/core"
	"alpha21364/internal/experiment"
	"alpha21364/internal/sim"
	"alpha21364/internal/standalone"
	"alpha21364/internal/stats"
	"alpha21364/internal/traffic"
)

// Arbitration algorithm kinds (see core.Kind).
type Kind = core.Kind

// Algorithm kinds compared by the paper.
const (
	MCM        = core.KindMCM
	PIM        = core.KindPIM
	PIM1       = core.KindPIM1
	WFABase    = core.KindWFABase
	WFARotary  = core.KindWFARotary
	SPAABase   = core.KindSPAABase
	SPAARotary = core.KindSPAARotary
	OPF        = core.KindOPF
)

// Arbiter is an arbitration algorithm over the router's connection matrix.
type Arbiter = core.Arbiter

// Matrix is the 16x7 request matrix an Arbiter matches over.
type Matrix = core.Matrix

// Grant is one (read port, output port) match.
type Grant = core.Grant

// RNG is the deterministic random number generator used throughout.
type RNG = sim.RNG

// NewRNG returns a seeded deterministic generator.
func NewRNG(seed uint64) *RNG { return sim.NewRNG(seed) }

// NewArbiter constructs an arbitration algorithm. The RNG feeds PIM's
// random grant/accept steps; deterministic algorithms ignore it.
func NewArbiter(k Kind, rng *RNG) Arbiter { return core.New(k, rng) }

// NewRouterMatrix returns an empty request matrix shaped like the 21364:
// 16 read-port rows (rows 0-7 fed by network input ports) and 7 output
// columns.
func NewRouterMatrix() *Matrix { return core.NewRouterMatrix() }

// ParseKind resolves an algorithm name such as "SPAA-rotary".
func ParseKind(name string) (Kind, error) { return core.ParseKind(name) }

// Traffic patterns of the paper's synthetic workloads.
type Pattern = traffic.Pattern

// Destination patterns (§4.2).
const (
	Uniform        = traffic.Uniform
	BitReversal    = traffic.BitReversal
	PerfectShuffle = traffic.PerfectShuffle
)

// ParsePattern resolves a pattern name such as "bit-reversal".
func ParsePattern(name string) (Pattern, error) { return traffic.ParsePattern(name) }

// StandaloneConfig parameterizes the single-router matching model.
type StandaloneConfig = standalone.Config

// StandaloneResult reports a standalone run.
type StandaloneResult = standalone.Result

// DefaultStandaloneConfig returns the paper's standalone parameters at the
// given per-input-port load.
func DefaultStandaloneConfig(load float64) StandaloneConfig {
	return standalone.DefaultConfig(load)
}

// RunStandalone measures one algorithm's matches per cycle in the
// standalone model (Figures 8-9).
func RunStandalone(k Kind, cfg StandaloneConfig) StandaloneResult {
	return standalone.Run(k, cfg)
}

// RunStandaloneArbiter is RunStandalone for a caller-constructed arbiter —
// custom PIM/iSLIP iteration counts or user algorithms implementing
// Arbiter.
func RunStandaloneArbiter(arb Arbiter, cfg StandaloneConfig) StandaloneResult {
	return standalone.RunArbiter(arb, cfg)
}

// NewISLIP returns McKeown's iSLIP scheduler with the given iteration
// count — the hardware-implementable PIM derivative the paper cites in
// §3.1. Run it through RunStandaloneArbiter.
func NewISLIP(iterations int) Arbiter { return core.NewISLIP(iterations) }

// NewPIMIter returns PIM with a custom iteration count (the paper uses 1
// and log2 N = 4).
func NewPIMIter(iterations int, rng *RNG) Arbiter { return core.NewPIM(iterations, rng) }

// NewWFAPlain returns the original non-wrapped, fixed-priority Wave-Front
// Arbiter, for fairness comparisons against the wrapped WFA the paper
// models.
func NewWFAPlain() Arbiter { return core.NewWFAPlain() }

// MCMSaturationLoad locates the load at which MCM's match rate saturates,
// the unit of Figure 8's horizontal axis.
func MCMSaturationLoad(cfg StandaloneConfig) float64 {
	return standalone.MCMSaturationLoad(cfg)
}

// TimingSetup describes one timing-model simulation.
type TimingSetup = experiment.TimingSetup

// TimingResult is a BNF point plus diagnostics.
type TimingResult = experiment.TimingResult

// Point is one latency/throughput measurement.
type Point = stats.Point

// Series is a load-sweep BNF curve.
type Series = stats.Series

// NoWarmup, assigned to TimingSetup.WarmupFraction, disables the warmup
// exclusion so statistics cover the entire run (0 keeps the 0.2 default).
const NoWarmup = experiment.NoWarmup

// RunTiming executes one timing simulation.
func RunTiming(s TimingSetup) (TimingResult, error) { return experiment.RunTiming(s) }

// SweepBNF sweeps injection rates for one algorithm, producing a BNF
// curve. The rates are simulated concurrently (one worker per CPU) with
// byte-identical results to a serial run; use SweepBNFOpts to bound or
// observe the parallelism.
func SweepBNF(s TimingSetup, rates []float64) (Series, error) {
	return experiment.Sweep(s, rates)
}

// SweepBNFOpts is SweepBNF with explicit runner options: Options.Workers
// bounds the concurrency (1 = serial) and Options.Progress, when non-nil,
// observes each finished simulation.
func SweepBNFOpts(o Options, s TimingSetup, rates []float64) (Series, error) {
	return experiment.SweepOpts(o, s, rates)
}

// ProgressFunc observes sweep progress; see Options.Progress.
type ProgressFunc = experiment.ProgressFunc

// Options tunes the per-figure experiment runners.
type Options = experiment.Options

// Panel is one BNF chart (several algorithms on one axis).
type Panel = experiment.Panel

// Table is a formatted result grid.
type Table = experiment.Table

// Figure runners reproduce the paper's evaluation; see cmd/sweep.
var (
	Figure8            = experiment.Figure8
	Figure9            = experiment.Figure9
	Figure10           = experiment.Figure10
	Figure10Saturation = experiment.Figure10Saturation
	Figure11a          = experiment.Figure11a
	Figure11b          = experiment.Figure11b
	Figure11c          = experiment.Figure11c
)
